//! First-class stop conditions and run reports for the round driver.
//!
//! Historically every experiment called
//! `run_until_stable(|_, s| s.output(), quiet, max_steps)` — a
//! projection closure plus two magic numbers, re-invented at ~28 call
//! sites. [`StopWhen`] names those semantics once:
//!
//! * [`StopWhen::StableFor`] — the observable output unchanged for a
//!   quiet streak (the paper's stabilization measurement);
//! * [`StopWhen::MaxSteps`] — a step budget (relative to the start of
//!   the run, so re-arming after a corruption needs no arithmetic);
//! * [`StopWhen::Predicate`] — an arbitrary condition over the
//!   topology and states (e.g. Lemma 1's "all densities correct");
//! * [`StopWhen::All`] / [`StopWhen::Any`] — combinators, usually via
//!   the fluent [`StopWhen::within`] / [`StopWhen::or`] / [`StopWhen::and`].
//!
//! Runs return a [`RunReport`] instead of a bare `Option<u64>`: the
//! stabilization step, the number of steps executed, and whether the
//! run hit its budget without satisfying any other condition.

use mwn_graph::Topology;

use crate::{Observable, StabilityTracker};

/// A declarative stop condition for [`crate::Network::run_to`] and the
/// [`crate::Sweep`] runner.
///
/// Weak-stabilization experiments (Devismes et al.) ask "did the run
/// reach a legitimate output within a budget?" over many seeds —
/// exactly `StopWhen::stable_for(q).within(n)` fanned out by a sweep.
pub enum StopWhen<P: Observable> {
    /// The projected output of every node unchanged for this many
    /// consecutive steps.
    StableFor {
        /// Required quiet streak (clamped to at least 1).
        quiet: u64,
    },
    /// This many steps executed since the current run began.
    MaxSteps(u64),
    /// An arbitrary condition over the topology and the node states,
    /// checked before the first step and after every step.
    Predicate(fn(&Topology, &[P::State]) -> bool),
    /// Every sub-condition holds simultaneously.
    All(Vec<StopWhen<P>>),
    /// At least one sub-condition holds.
    Any(Vec<StopWhen<P>>),
}

impl<P: Observable> StopWhen<P> {
    /// Stop once the output is unchanged for `quiet` consecutive steps.
    pub fn stable_for(quiet: u64) -> Self {
        StopWhen::StableFor { quiet }
    }

    /// Stop after `n` executed steps.
    pub fn max_steps(n: u64) -> Self {
        StopWhen::MaxSteps(n)
    }

    /// Stop once `pred(topology, states)` holds.
    pub fn predicate(pred: fn(&Topology, &[P::State]) -> bool) -> Self {
        StopWhen::Predicate(pred)
    }

    /// This condition, or a step budget of `n` — the idiom replacing
    /// the old `(quiet, max_steps)` pair. A run that ends on the
    /// budget alone reports [`RunReport::timed_out`].
    pub fn within(self, n: u64) -> Self {
        self.or(StopWhen::MaxSteps(n))
    }

    /// Either condition.
    pub fn or(self, other: Self) -> Self {
        match self {
            StopWhen::Any(mut xs) => {
                xs.push(other);
                StopWhen::Any(xs)
            }
            x => StopWhen::Any(vec![x, other]),
        }
    }

    /// Both conditions.
    pub fn and(self, other: Self) -> Self {
        match self {
            StopWhen::All(mut xs) => {
                xs.push(other);
                StopWhen::All(xs)
            }
            x => StopWhen::All(vec![x, other]),
        }
    }

    /// `true` when the tree contains a [`StopWhen::StableFor`] leaf —
    /// i.e. evaluation needs the per-step output projection.
    pub(crate) fn needs_outputs(&self) -> bool {
        match self {
            StopWhen::StableFor { .. } => true,
            StopWhen::MaxSteps(_) | StopWhen::Predicate(_) => false,
            StopWhen::All(xs) | StopWhen::Any(xs) => xs.iter().any(StopWhen::needs_outputs),
        }
    }

    pub(crate) fn cursor(&self) -> Cursor<P> {
        match self {
            StopWhen::StableFor { quiet } => Cursor::Stable {
                tracker: StabilityTracker::new(*quiet),
                done: false,
            },
            StopWhen::MaxSteps(n) => Cursor::Max(*n),
            StopWhen::Predicate(f) => Cursor::Pred {
                pred: *f,
                last: None,
            },
            StopWhen::All(xs) => Cursor::All(xs.iter().map(StopWhen::cursor).collect()),
            StopWhen::Any(xs) => Cursor::Any(xs.iter().map(StopWhen::cursor).collect()),
        }
    }
}

impl<P: Observable> Clone for StopWhen<P> {
    fn clone(&self) -> Self {
        match self {
            StopWhen::StableFor { quiet } => StopWhen::StableFor { quiet: *quiet },
            StopWhen::MaxSteps(n) => StopWhen::MaxSteps(*n),
            StopWhen::Predicate(f) => StopWhen::Predicate(*f),
            StopWhen::All(xs) => StopWhen::All(xs.clone()),
            StopWhen::Any(xs) => StopWhen::Any(xs.clone()),
        }
    }
}

impl<P: Observable> std::fmt::Debug for StopWhen<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopWhen::StableFor { quiet } => write!(f, "StableFor {{ quiet: {quiet} }}"),
            StopWhen::MaxSteps(n) => write!(f, "MaxSteps({n})"),
            StopWhen::Predicate(_) => write!(f, "Predicate(..)"),
            StopWhen::All(xs) => f.debug_tuple("All").field(xs).finish(),
            StopWhen::Any(xs) => f.debug_tuple("Any").field(xs).finish(),
        }
    }
}

/// What one run did: how long it ran, whether a stability condition
/// fired, and whether only the step budget ended it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// The step after which the observable output last changed — the
    /// measured stabilization time — when a [`StopWhen::StableFor`]
    /// condition was satisfied. Comparable to the paper's Tables 2–5
    /// step counts.
    pub stabilized: Option<u64>,
    /// Steps executed during this run.
    pub steps: u64,
    /// Absolute step count of the network when the run ended.
    pub end_step: u64,
    /// `true` when a non-budget condition was satisfied.
    pub satisfied: bool,
    /// `true` when only [`StopWhen::MaxSteps`] ended the run — the
    /// replacement for the old `None` timeout.
    pub timed_out: bool,
}

impl RunReport {
    /// The stabilization step, or a panic with `msg` — the migration
    /// path for the old `run_until_stable(..).expect(msg)` idiom.
    ///
    /// # Panics
    ///
    /// Panics with `msg` if no stability condition was satisfied.
    #[track_caller]
    pub fn expect_stable(&self, msg: &str) -> u64 {
        match self.stabilized {
            Some(step) => step,
            None => panic!(
                "{msg} (ran {} steps, timed out: {})",
                self.steps, self.timed_out
            ),
        }
    }

    /// `true` when a stability condition fired.
    pub fn is_stable(&self) -> bool {
        self.stabilized.is_some()
    }
}

/// One per-step observation fed to a [`Cursor`].
///
/// The eager driver hands over the full output projection; the
/// activity-driven driver hands over what its dirty-set bookkeeping
/// already knows — whether any output, state or environment (topology /
/// fault) change happened this step — so a quiescent step is evaluated
/// in O(tree) instead of O(n).
pub(crate) enum Obs<'a, P: Observable> {
    /// The complete projected output of every node.
    Full {
        /// Outputs indexed by node.
        outputs: &'a [P::Output],
    },
    /// Change flags from the activity-driven step.
    Delta {
        /// Some node's observable output changed this step.
        output_changed: bool,
        /// Some node's state changed this step.
        state_changed: bool,
        /// The topology changed or a fault fired this step.
        env_changed: bool,
    },
}

/// Per-run evaluation state mirroring a [`StopWhen`] tree.
pub(crate) enum Cursor<P: Observable> {
    Stable {
        tracker: StabilityTracker<P::Output>,
        done: bool,
    },
    Max(u64),
    Pred {
        pred: fn(&Topology, &[P::State]) -> bool,
        /// Memoized verdict: predicates are pure functions of
        /// `(topology, states)`, so a step that changed neither can
        /// reuse the previous evaluation.
        last: Option<bool>,
    },
    All(Vec<Cursor<P>>),
    Any(Vec<Cursor<P>>),
}

/// One evaluation outcome: is the subtree satisfied, and was the
/// satisfaction produced by step budgets alone?
#[derive(Clone, Copy)]
pub(crate) struct Verdict {
    pub satisfied: bool,
    pub budget_only: bool,
}

impl<P: Observable> Cursor<P> {
    /// Feeds one observation (absolute step `now`, `steps` executed so
    /// far this run) and reports whether the subtree is satisfied.
    /// Every leaf is always evaluated so stability trackers see every
    /// step.
    pub(crate) fn observe(
        &mut self,
        now: u64,
        steps: u64,
        topo: &Topology,
        states: &[P::State],
        obs: &Obs<'_, P>,
    ) -> Verdict {
        match self {
            Cursor::Stable { tracker, done } => {
                // `done` tracks *current* stability, not a latch: under
                // an `and()` composition the run continues past the
                // first quiet streak, and a fault that restarts churn
                // must un-satisfy this leaf (and invalidate its
                // stabilization step) until the output quiesces again.
                *done = match obs {
                    Obs::Full { outputs } => tracker.observe_slice(now, outputs),
                    Obs::Delta { output_changed, .. } => tracker.observe_flag(now, *output_changed),
                };
                Verdict {
                    satisfied: *done,
                    budget_only: false,
                }
            }
            Cursor::Max(n) => Verdict {
                satisfied: steps >= *n,
                budget_only: true,
            },
            Cursor::Pred { pred, last } => {
                let satisfied = match obs {
                    Obs::Full { .. } => pred(topo, states),
                    Obs::Delta {
                        state_changed,
                        env_changed,
                        ..
                    } => match *last {
                        Some(prev) if !state_changed && !env_changed => prev,
                        _ => pred(topo, states),
                    },
                };
                *last = Some(satisfied);
                Verdict {
                    satisfied,
                    budget_only: false,
                }
            }
            // Both combinators fold without short-circuiting: every
            // child is evaluated each step so stability trackers see
            // every observation, and nothing is allocated in the
            // per-step hot loop.
            Cursor::All(children) => children
                .iter_mut()
                .map(|c| c.observe(now, steps, topo, states, obs))
                .fold(
                    Verdict {
                        satisfied: true,
                        budget_only: true,
                    },
                    |acc, v| Verdict {
                        satisfied: acc.satisfied && v.satisfied,
                        budget_only: acc.budget_only && v.budget_only,
                    },
                ),
            Cursor::Any(children) => {
                // The run "timed out" only when every satisfied limb
                // is a budget.
                let (satisfied, satisfied_all_budget) = children
                    .iter_mut()
                    .map(|c| c.observe(now, steps, topo, states, obs))
                    .fold((false, true), |(any_sat, all_budget), v| {
                        (
                            any_sat || v.satisfied,
                            all_budget && (!v.satisfied || v.budget_only),
                        )
                    });
                Verdict {
                    satisfied,
                    budget_only: satisfied && satisfied_all_budget,
                }
            }
        }
    }

    /// The stabilization step of the first satisfied stability leaf.
    pub(crate) fn stabilized(&self) -> Option<u64> {
        match self {
            Cursor::Stable { tracker, done } => done.then(|| tracker.last_change()),
            Cursor::Max(_) | Cursor::Pred { .. } => None,
            Cursor::All(children) | Cursor::Any(children) => {
                children.iter().find_map(Cursor::stabilized)
            }
        }
    }
}
