use mwn_graph::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::Rng;

use crate::{ContentionStreams, Delivery, Medium, OccupancyView};

/// Slotted medium with the **capture effect**: when two frames collide
/// at a receiver, the much-closer (much-stronger) transmitter can still
/// be decoded.
///
/// Senders pick a uniform slot, as in [`crate::SlottedCsma`] without
/// carrier sensing. At receiver `r` in slot `t` with transmitting
/// neighbors `T`:
///
/// * `|T| = 1` → the frame is received (unless `r` itself transmitted
///   in `t`, half-duplex);
/// * `|T| ≥ 2` → the nearest transmitter `s*` is *captured* iff
///   `d(s*, r) · capture_ratio ≤ d(s₂, r)` where `s₂` is the
///   second-nearest; everything else is lost.
///
/// `capture_ratio ≥ 1` maps to the usual SINR threshold under a
/// power-law path loss: ratio `c` ≈ threshold^(1/α).
///
/// # Examples
///
/// ```
/// use mwn_radio::CaptureCsma;
///
/// let m = CaptureCsma::new(8, 2.0);
/// assert_eq!(m.slots(), 8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CaptureCsma {
    slots: usize,
    capture_ratio: f64,
}

impl CaptureCsma {
    /// Creates the medium.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0` or `capture_ratio < 1`.
    pub fn new(slots: usize, capture_ratio: f64) -> Self {
        assert!(slots > 0, "need at least one slot per step");
        assert!(
            capture_ratio >= 1.0,
            "a capture ratio below 1 would capture the weaker frame"
        );
        CaptureCsma {
            slots,
            capture_ratio,
        }
    }

    /// Number of mini-slots per step.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The distance-advantage ratio required for capture.
    pub fn capture_ratio(&self) -> f64 {
        self.capture_ratio
    }
}

impl Medium for CaptureCsma {
    /// # Panics
    ///
    /// Panics if the topology carries no positions (capture needs
    /// distances; build it with [`Topology::unit_disk`]).
    fn deliver_into(
        &mut self,
        topo: &Topology,
        senders: &[NodeId],
        rng: &mut StdRng,
        delivery: &mut Delivery,
    ) {
        let positions = topo
            .positions()
            .expect("the capture effect requires node positions");
        let mut slot_of = vec![usize::MAX; topo.len()];
        for &s in senders {
            slot_of[s.index()] = rng.random_range(0..self.slots);
            delivery.attempted += topo.degree(s);
        }
        for r in topo.nodes() {
            // Group transmitting neighbors of r by slot.
            let mut by_slot: std::collections::BTreeMap<usize, Vec<NodeId>> =
                std::collections::BTreeMap::new();
            for &q in topo.neighbors(r) {
                let slot = slot_of[q.index()];
                if slot != usize::MAX {
                    by_slot.entry(slot).or_default().push(q);
                }
            }
            for (slot, txs) in by_slot {
                if slot_of[r.index()] == slot {
                    continue; // half-duplex
                }
                let winner = match txs.as_slice() {
                    [] => continue,
                    [only] => Some(*only),
                    _ => {
                        let mut ranked: Vec<(f64, NodeId)> = txs
                            .iter()
                            .map(|&q| (positions[q.index()].distance(positions[r.index()]), q))
                            .collect();
                        // Exactly equal received powers are broken by
                        // node id, so the winner is deterministic on
                        // every driver (whether such a tie can satisfy
                        // the capture condition is the ratio's call).
                        ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                        let (d1, nearest) = ranked[0];
                        let (d2, _) = ranked[1];
                        (d1 * self.capture_ratio <= d2).then_some(nearest)
                    }
                };
                if let Some(s) = winner {
                    delivery.record(r, s);
                }
            }
        }
    }

    fn gated_contention(&self) -> bool {
        true
    }

    /// Exact slots for the active `senders` (per-sender streams, no
    /// carrier sense), statistical contenders from the occupied
    /// population: for a copy `s → r`, each occupied `q ∈ N(r) \ {s}`
    /// lands in `s`'s slot with probability `1/slots` (one Bernoulli
    /// per phantom off the per-(tick, r, s) copy stream, drawn in
    /// sorted-neighbor order), and an occupied `r` is itself
    /// transmitting over `s` with probability `1/slots`. The winner
    /// among `{s}` ∪ exact in-slot actives ∪ drawn phantoms is ranked
    /// by (distance, node id); the copy is recorded iff `s` wins *and*
    /// clears the capture ratio. A winning phantom delivers nothing —
    /// its beacon is stale by definition of being silent.
    fn deliver_occupied_into(
        &mut self,
        topo: &Topology,
        senders: &[NodeId],
        occupancy: &dyn OccupancyView,
        streams: &ContentionStreams,
        delivery: &mut Delivery,
    ) {
        if senders.is_empty() {
            return; // the quiet path: zero work, zero draws
        }
        let positions = topo
            .positions()
            .expect("the capture effect requires node positions");
        let p_slot = 1.0 / self.slots as f64;
        let mut slot_of = vec![usize::MAX; topo.len()];
        for &s in senders {
            slot_of[s.index()] = streams.sender(s).random_range(0..self.slots);
            delivery.attempted += topo.degree(s);
        }
        let mut ranked: Vec<(f64, NodeId)> = Vec::new();
        for &s in senders {
            let slot = slot_of[s.index()];
            for &r in topo.neighbors(s) {
                if slot_of[r.index()] == slot {
                    continue; // half-duplex among actives (exact)
                }
                let mut rng = streams.copy(r, s);
                if occupancy.is_occupied(r) && rng.random::<f64>() < p_slot {
                    continue; // half-duplex against the phantom r
                }
                ranked.clear();
                ranked.push((positions[s.index()].distance(positions[r.index()]), s));
                for &q in topo.neighbors(r) {
                    if q == s {
                        continue;
                    }
                    let in_slot = if slot_of[q.index()] != usize::MAX {
                        slot_of[q.index()] == slot // exact active contender
                    } else {
                        occupancy.is_occupied(q) && rng.random::<f64>() < p_slot
                    };
                    if in_slot {
                        ranked.push((positions[q.index()].distance(positions[r.index()]), q));
                    }
                }
                if ranked.len() == 1 {
                    delivery.record(r, s);
                    continue;
                }
                ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                let (d1, nearest) = ranked[0];
                let (d2, _) = ranked[1];
                if nearest == s && d1 * self.capture_ratio <= d2 {
                    delivery.record(r, s);
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "capture-csma"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{measure_tau, SlottedCsma};
    use mwn_graph::{builders, Point2, Topology};
    use rand::SeedableRng;

    #[test]
    fn capture_saves_the_near_frame() {
        // Receiver 0 with a very close sender 1 and a far sender 2,
        // one slot (guaranteed collision): 1 must be captured.
        let positions = vec![
            Point2::new(0.5, 0.5),
            Point2::new(0.505, 0.5),
            Point2::new(0.59, 0.5),
        ];
        let topo = Topology::unit_disk(positions, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut medium = CaptureCsma::new(1, 3.0);
        let d = medium.deliver(&topo, &[NodeId::new(1), NodeId::new(2)], &mut rng);
        assert_eq!(d.heard[0], vec![NodeId::new(1)]);
    }

    #[test]
    fn equal_distances_are_never_captured() {
        let positions = vec![
            Point2::new(0.5, 0.5),
            Point2::new(0.55, 0.5),
            Point2::new(0.45, 0.5),
        ];
        let topo = Topology::unit_disk(positions, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut medium = CaptureCsma::new(1, 1.5);
        let d = medium.deliver(&topo, &[NodeId::new(1), NodeId::new(2)], &mut rng);
        assert!(d.heard[0].is_empty(), "symmetric collision destroys both");
    }

    #[test]
    fn capture_improves_on_plain_slotted_aloha() {
        let mut rng = StdRng::seed_from_u64(3);
        let topo = builders::uniform(80, 0.15, &mut rng);
        let plain = measure_tau(
            &mut SlottedCsma::new(8).without_carrier_sense(),
            &topo,
            60,
            &mut rng,
        );
        let capture = measure_tau(&mut CaptureCsma::new(8, 1.5), &topo, 60, &mut rng);
        assert!(
            capture > plain,
            "capture τ = {capture} should beat plain τ = {plain}"
        );
    }

    #[test]
    fn lone_sender_always_heard() {
        let topo = builders::star(6);
        let mut rng = StdRng::seed_from_u64(4);
        let d = CaptureCsma::new(4, 2.0).deliver(&topo, &[NodeId::new(0)], &mut rng);
        assert_eq!(d.delivered, 5);
    }

    #[test]
    #[should_panic(expected = "capture ratio below 1")]
    fn sub_one_ratio_rejected() {
        let _ = CaptureCsma::new(4, 0.5);
    }

    /// Nodes 1 and 2 exactly equidistant from receiver 0. The
    /// coordinates are dyadic rationals, so both distances are the
    /// *same* float (0.25) — a true tie, not an epsilon apart.
    fn symmetric_pair() -> Topology {
        let positions = vec![
            Point2::new(0.5, 0.5),
            Point2::new(0.75, 0.5),
            Point2::new(0.25, 0.5),
        ];
        Topology::unit_disk(positions, 0.3).unwrap()
    }

    #[test]
    fn equal_powers_capture_the_lowest_id_on_the_eager_path() {
        // Regression: exactly equal received powers must resolve by
        // node id, not by slot-draw order or HashMap/seed accidents.
        // One slot forces the collision; ratio 1.0 lets the tie pass
        // the capture condition, so the winner is purely the
        // tie-break's pick — and it must be node 1 for every seed.
        let topo = symmetric_pair();
        for seed in 0..16 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut medium = CaptureCsma::new(1, 1.0);
            let d = medium.deliver(&topo, &[NodeId::new(1), NodeId::new(2)], &mut rng);
            assert_eq!(
                d.heard[0],
                vec![NodeId::new(1)],
                "seed {seed}: the lower id must win the power tie"
            );
        }
    }

    #[test]
    fn equal_powers_capture_the_lowest_id_on_the_gated_path() {
        // The same tie-break pins the statistical-occupancy path: two
        // exact actives collide in the single slot, and only node 1's
        // copy may be captured at the symmetric receiver.
        let topo = symmetric_pair();
        let occupancy = crate::Occupancy::new(topo.len());
        for tick in 0..16 {
            let streams = ContentionStreams::new(7, 11, tick);
            let mut medium = CaptureCsma::new(1, 1.0);
            let mut d = crate::Delivery::empty(topo.len());
            medium.deliver_occupied_into(
                &topo,
                &[NodeId::new(1), NodeId::new(2)],
                &occupancy,
                &streams,
                &mut d,
            );
            assert_eq!(
                d.heard[0],
                vec![NodeId::new(1)],
                "tick {tick}: the lower id must win the power tie"
            );
        }
    }

    #[test]
    fn equal_powers_break_ties_by_id_against_phantoms_too() {
        // An equidistant *occupied* contender enters the same ranking:
        // with one slot it always contends, so an active node 2 loses
        // the tie to phantom node 1 (nothing delivered — the phantom's
        // beacon is stale), while an active node 1 beats phantom 2.
        let topo = symmetric_pair();
        let mut occupancy = crate::Occupancy::new(topo.len());
        occupancy.occupy(NodeId::new(2), &topo);
        let streams = ContentionStreams::new(7, 11, 3);
        let mut medium = CaptureCsma::new(1, 1.0);
        let mut d = crate::Delivery::empty(topo.len());
        medium.deliver_from_occupied(&topo, NodeId::new(1), &occupancy, &streams, &mut d);
        assert_eq!(d.heard[0], vec![NodeId::new(1)], "active 1 beats phantom 2");

        let mut occupancy = crate::Occupancy::new(topo.len());
        occupancy.occupy(NodeId::new(1), &topo);
        let mut d = crate::Delivery::empty(topo.len());
        medium.deliver_from_occupied(&topo, NodeId::new(2), &occupancy, &streams, &mut d);
        assert!(
            d.heard[0].is_empty(),
            "phantom 1 wins the tie and delivers nothing"
        );
    }
}
