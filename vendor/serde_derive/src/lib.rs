//! No-op derive macros backing the offline `serde` shim: the derives
//! expand to nothing, so annotated types compile without generating
//! serialization code.

use proc_macro::TokenStream;

/// Expands to nothing (offline stand-in for serde's derive).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing (offline stand-in for serde's derive).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
