//! Branch-lean, word-at-a-time kernels behind the converging-phase hot
//! loop, plus the cache-engineered columnar layouts they operate on.
//!
//! The quiet path costs (near) zero by construction — dirty sets empty,
//! event queue drained — so the engine's remaining cost center is the
//! **converging phase**: every node active, every beacon flying, every
//! step a full pass over the dirty bitsets, the per-edge reception
//! epochs and the delivered-frame lists. This module extracts those
//! inner loops into standalone kernels with three properties:
//!
//! * **word-at-a-time** — dirty sets live in u64 words ([`BitWords`],
//!   backed by cache-line-aligned [`BitLine`]s); membership is a bit
//!   test, dense iteration decodes set bits with `trailing_zeros` (with
//!   an all-ones fast path that turns the cold-start storm into a
//!   near-memcpy), and draining never sorts — bit order *is* node
//!   order, so the sort the list-backed set needed disappears;
//! * **branch-lean** — the epoch/heard comparisons ([`any_fresh`],
//!   [`count_eq_u32`]) accumulate compare bits instead of early-exiting,
//!   so the loop body is straight-line code the compiler autovectorizes
//!   (SIMD compares on the contiguous `u32` epoch rows); the sorted
//!   join ([`sorted_positions`]) replaces the per-frame binary search
//!   of the old pass with a two-pointer merge over the (sorted)
//!   delivered-sender and adjacency lists;
//! * **contiguous** — [`HeardTable`] flattens the per-node reception
//!   rows (`Vec<Vec<u32>>`, one heap allocation per node) into one CSR
//!   arena: each row is a contiguous `&[u32]` slice, rows are laid out
//!   back-to-back in node order (the order the pass visits them), and
//!   wholesale invalidation is a single bulk fill instead of n
//!   re-allocations.
//!
//! # Alignment and padding audit
//!
//! The crate forbids `unsafe`, so heap alignment is obtained by
//! construction rather than by custom allocation: the bitset columns
//! are `Vec<BitLine>` with `#[repr(align(64))] BitLine([u64; 8])`, so
//! every line of dirty bits starts on a cache-line boundary and the
//! decode loop streams whole lines. The `u32` epoch columns
//! ([`HeardTable::row`], `NodeTable::epoch`) rely on autovectorization
//! with unaligned loads (peeled prologues) — measured on par with
//! aligned access on current x86-64. Cross-thread false sharing is
//! confined to the per-shard outcome arenas, which are
//! `#[repr(align(64))]`-padded so no two workers ever write the same
//! line (see `ShardScratch` in `network.rs`).
//!
//! Every kernel has a scalar reference implementation next to it
//! (`*_scalar`), property-tested equal in this module and benchmarked
//! against it in `crates/bench/benches/kernels.rs`.

use mwn_graph::NodeId;

/// Beacon-epoch sentinel meaning "never received anything from this
/// neighbor" (mirrored from the engine so the kernels are
/// self-contained).
const NEVER: u32 = u32::MAX;

/// Bits per bitset word.
const WORD_BITS: usize = 64;

/// Words per cache line.
const WORDS_PER_LINE: usize = 8;

/// One cache line of bitset words: the backing unit of [`BitWords`].
/// The `align(64)` guarantees every line — and therefore the whole
/// heap buffer — starts on a cache-line boundary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(align(64))]
pub struct BitLine([u64; WORDS_PER_LINE]);

/// A fixed-capacity bitset over node indices, stored in cache-line
/// aligned u64 words. All hot operations are O(1) bit ops; dense
/// iteration is a word scan with `trailing_zeros` decode.
#[derive(Clone, Debug, Default)]
pub struct BitWords {
    lines: Vec<BitLine>,
    nbits: usize,
}

impl BitWords {
    /// An empty set over `n` indices.
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(WORD_BITS);
        BitWords {
            lines: vec![BitLine::default(); words.div_ceil(WORDS_PER_LINE)],
            nbits: n,
        }
    }

    /// Capacity in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.nbits
    }

    /// `true` when the set holds no indices at all capacity 0.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    #[inline]
    fn slot(i: usize) -> (usize, usize, u64) {
        let word = i / WORD_BITS;
        (
            word / WORDS_PER_LINE,
            word % WORDS_PER_LINE,
            1u64 << (i % WORD_BITS),
        )
    }

    /// Tests bit `i`.
    #[inline]
    pub fn test(&self, i: usize) -> bool {
        let (l, w, m) = Self::slot(i);
        self.lines[l].0[w] & m != 0
    }

    /// Sets bit `i`; returns `true` when it was previously clear.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        let (l, w, m) = Self::slot(i);
        let word = &mut self.lines[l].0[w];
        let fresh = *word & m == 0;
        *word |= m;
        fresh
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        let (l, w, m) = Self::slot(i);
        self.lines[l].0[w] &= !m;
    }

    /// Sets every bit in `0..len()` (bulk fill, tail word masked so
    /// out-of-range bits stay clear).
    pub fn fill_all(&mut self) {
        self.lines.fill(BitLine([u64::MAX; WORDS_PER_LINE]));
        self.mask_tail();
    }

    /// Clears every bit.
    pub fn zero_all(&mut self) {
        self.lines.fill(BitLine::default());
    }

    /// Zeroes the bits past `nbits` that the bulk fill set.
    fn mask_tail(&mut self) {
        let full_words = self.nbits / WORD_BITS;
        let rem = self.nbits % WORD_BITS;
        let total_words = self.lines.len() * WORDS_PER_LINE;
        if rem != 0 {
            let (l, w, _) = Self::slot(self.nbits);
            self.lines[l].0[w] &= (1u64 << rem) - 1;
        }
        let first_dead = full_words + usize::from(rem != 0);
        for word in first_dead..total_words {
            self.lines[word / WORDS_PER_LINE].0[word % WORDS_PER_LINE] = 0;
        }
    }

    /// Appends every set bit to `out` in ascending index order — the
    /// bitset-scan kernel. Each word decodes with `trailing_zeros`;
    /// an all-ones word (the converging-phase common case) takes a
    /// straight-line fast path.
    pub fn decode_into(&self, out: &mut Vec<NodeId>) {
        for (li, line) in self.lines.iter().enumerate() {
            if line.0 == [0u64; WORDS_PER_LINE] {
                continue;
            }
            for (wi, &w) in line.0.iter().enumerate() {
                decode_word(w, ((li * WORDS_PER_LINE + wi) * WORD_BITS) as u32, out);
            }
        }
    }

    /// [`BitWords::decode_into`] that also clears the set: the drain
    /// used by the per-step dirty-set collection.
    pub fn decode_and_zero_into(&mut self, out: &mut Vec<NodeId>) {
        for (li, line) in self.lines.iter_mut().enumerate() {
            if line.0 == [0u64; WORDS_PER_LINE] {
                continue;
            }
            for (wi, w) in line.0.iter_mut().enumerate() {
                decode_word(*w, ((li * WORDS_PER_LINE + wi) * WORD_BITS) as u32, out);
                *w = 0;
            }
        }
    }

    /// Scalar reference for [`BitWords::decode_into`]: per-bit test
    /// loop. Kept for equivalence tests and the micro-benches.
    pub fn decode_into_scalar(&self, out: &mut Vec<NodeId>) {
        for i in 0..self.nbits {
            if self.test(i) {
                out.push(NodeId::new(i as u32));
            }
        }
    }
}

/// Decodes one bitset word into `out` (bit `b` → `base + b`).
#[inline]
fn decode_word(w: u64, base: u32, out: &mut Vec<NodeId>) {
    if w == u64::MAX {
        // Dense fast path: the converging storm sets whole words.
        for b in 0..WORD_BITS as u32 {
            out.push(NodeId::new(base + b));
        }
    } else {
        let mut m = w;
        while m != 0 {
            out.push(NodeId::new(base + m.trailing_zeros()));
            m &= m - 1;
        }
    }
}

/// Minimum haystack width for the two-pointer merge strategy in
/// [`sorted_positions`] / [`any_fresh`]. Below it (or when keys hit
/// less than a quarter of the haystack) per-key binary search wins:
/// the crossover sits far past typical radio degrees (≈ 8–32), per
/// the degree sweep in `benches/kernels.rs` on the reference
/// container.
const MERGE_MIN_HAYSTACK: usize = 512;

/// For every `key` (in order), finds its position in the sorted
/// `haystack` and calls `f(position, key)` — the merge kernel of the
/// per-node receive loop, joining the delivered-sender list of a
/// receiver against its sorted adjacency list.
///
/// Independent-fates media deliver senders in ascending order (the
/// sender set is iterated sorted), so the join is a two-pointer merge:
/// O(|haystack| + |keys|) with no data-dependent branches in the
/// advance loop, versus a binary search *per frame* in the scalar
/// reference. Out-of-order keys (contention media own their push
/// order) rewind the cursor, so the kernel is correct for any input.
///
/// The merge only pays off on wide, densely-hit adjacency rows; at
/// radio degrees (≈ 8–32) a handful of well-predicted binary-search
/// probes per key is faster than the merge's per-key cursor
/// bookkeeping (measured in `benches/kernels.rs`), so small or
/// sparsely-keyed rows take the per-key path. Both strategies call
/// `f` with identical `(position, key)` sequences.
///
/// # Panics
///
/// Panics when a key is absent: media may deliver only between
/// 1-neighbors, so an absent sender is an engine invariant violation.
#[inline]
pub fn sorted_positions<F: FnMut(usize, NodeId)>(haystack: &[NodeId], keys: &[NodeId], mut f: F) {
    const ABSENT: &str = "media deliver only between 1-neighbors";
    if haystack.len() < MERGE_MIN_HAYSTACK || keys.len() * 4 < haystack.len() {
        for &s in keys {
            f(haystack.binary_search(&s).expect(ABSENT), s);
        }
        return;
    }
    let mut cur = 0usize;
    for &s in keys {
        if cur > 0 && haystack[cur - 1] >= s {
            cur = 0; // out-of-order key: rewind and rescan
        }
        while cur < haystack.len() && haystack[cur] < s {
            cur += 1;
        }
        assert!(cur < haystack.len() && haystack[cur] == s, "{ABSENT}");
        f(cur, s);
        cur += 1;
    }
}

/// Scalar reference for [`sorted_positions`]: binary search per key,
/// exactly the pre-kernel receive loop.
pub fn sorted_positions_scalar<F: FnMut(usize, NodeId)>(
    haystack: &[NodeId],
    keys: &[NodeId],
    mut f: F,
) {
    for &s in keys {
        let idx = haystack
            .binary_search(&s)
            .expect("media deliver only between 1-neighbors");
        f(idx, s);
    }
}

/// `true` when any delivered sender's current beacon epoch differs
/// from what the receiver last incorporated — the epoch/heard
/// comparison kernel of the wakeup scan (phase 4).
///
/// `heard_row` is the receiver's contiguous reception row
/// ([`HeardTable::row`]), `epochs` the global beacon-epoch column,
/// `neighbors` the receiver's sorted adjacency list and `senders` the
/// delivered-frame senders.
///
/// Early-exits on the first fresh epoch: during converging the very
/// first delivered frame is almost always fresh, so bailing out there
/// beats OR-accumulating the whole row (8× on the radio-degree shapes
/// of `benches/kernels.rs`). Wide densely-hit rows walk a two-pointer
/// merge; radio-degree rows probe per key, mirroring
/// [`sorted_positions`]'s strategy split.
#[inline]
pub fn any_fresh(
    heard_row: &[u32],
    epochs: &[u32],
    neighbors: &[NodeId],
    senders: &[NodeId],
) -> bool {
    const ABSENT: &str = "media deliver only between 1-neighbors";
    if neighbors.len() < MERGE_MIN_HAYSTACK || senders.len() * 4 < neighbors.len() {
        return any_fresh_scalar(heard_row, epochs, neighbors, senders);
    }
    let mut cur = 0usize;
    for &s in senders {
        if cur > 0 && neighbors[cur - 1] >= s {
            cur = 0; // out-of-order key: rewind and rescan
        }
        while cur < neighbors.len() && neighbors[cur] < s {
            cur += 1;
        }
        assert!(cur < neighbors.len() && neighbors[cur] == s, "{ABSENT}");
        if heard_row[cur] != epochs[s.index()] {
            return true;
        }
        cur += 1;
    }
    false
}

/// Scalar reference for [`any_fresh`]: the early-exiting `any` over
/// per-frame binary searches the engine used before the kernel layer.
pub fn any_fresh_scalar(
    heard_row: &[u32],
    epochs: &[u32],
    neighbors: &[NodeId],
    senders: &[NodeId],
) -> bool {
    senders.iter().any(|&s| {
        let idx = neighbors
            .binary_search(&s)
            .expect("media deliver only between 1-neighbors");
        heard_row[idx] != epochs[s.index()]
    })
}

/// How many entries of the contiguous row equal `v` — the bulk epoch
/// compare. Written as an accumulating map/sum so the compiler lowers
/// it to SIMD compares over the `u32` slice.
#[inline]
pub fn count_eq_u32(row: &[u32], v: u32) -> usize {
    row.iter().map(|&x| usize::from(x == v)).sum()
}

/// Scalar reference for [`count_eq_u32`] (branchy accumulation).
pub fn count_eq_u32_scalar(row: &[u32], v: u32) -> usize {
    let mut n = 0usize;
    for &x in row {
        if x == v {
            n += 1;
        }
    }
    n
}

/// Per-row slack kept by [`HeardTable`] so mobility-driven degree
/// growth rarely forces a re-layout.
const ROW_SLACK: u32 = 2;

/// The per-edge reception epochs as one contiguous CSR arena: row `r`
/// holds, for each neighbor in `r`'s sorted adjacency list, the epoch
/// of that neighbor's beacon `r` last incorporated ([`NEVER`] if
/// none). Replaces the `Vec<Vec<u32>>`-of-rows layout (one heap
/// allocation and one pointer chase per node) with offset-indexed
/// slices: rows are contiguous, laid out in node order, and wholesale
/// invalidation is a single bulk fill.
///
/// Rows carry [`ROW_SLACK`] spare capacity so a link appearing under
/// mobility updates in place; only growth past the slack re-layouts
/// the arena (amortized, rare).
#[derive(Clone, Debug, Default)]
pub struct HeardTable {
    /// `off[r]..off[r + 1]` is row `r`'s capacity region in `data`.
    off: Vec<u32>,
    /// Live prefix of each row (the node's current degree).
    len: Vec<u32>,
    /// The epoch entries; [`NEVER`] everywhere outside live prefixes.
    data: Vec<u32>,
}

impl HeardTable {
    /// Builds the arena for the given per-node degrees, every entry
    /// [`NEVER`].
    pub fn new<I: IntoIterator<Item = usize>>(degrees: I) -> Self {
        let mut off = vec![0u32];
        let mut len = Vec::new();
        for deg in degrees {
            let last = *off.last().expect("off starts non-empty");
            off.push(last + deg as u32 + ROW_SLACK);
            len.push(deg as u32);
        }
        let total = *off.last().expect("off starts non-empty") as usize;
        HeardTable {
            off,
            len,
            data: vec![NEVER; total],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.len.len()
    }

    /// Row `r` as a contiguous slice (one entry per adjacency slot).
    #[inline]
    pub fn row(&self, r: usize) -> &[u32] {
        let lo = self.off[r] as usize;
        &self.data[lo..lo + self.len[r] as usize]
    }

    /// The entry at adjacency slot `idx` of row `r`.
    #[inline]
    pub fn get(&self, r: usize, idx: usize) -> u32 {
        debug_assert!(idx < self.len[r] as usize);
        self.data[self.off[r] as usize + idx]
    }

    /// Writes the entry at adjacency slot `idx` of row `r`.
    #[inline]
    pub fn set(&mut self, r: usize, idx: usize, v: u32) {
        debug_assert!(idx < self.len[r] as usize);
        self.data[self.off[r] as usize + idx] = v;
    }

    /// Realigns row `r` to `deg` entries, all [`NEVER`] — the
    /// conservative forget used when a node's adjacency list changed.
    pub fn reset_row(&mut self, r: usize, deg: usize) {
        if self.off[r + 1] - self.off[r] < deg as u32 {
            self.grow_row(r, deg);
        }
        let (lo, hi) = (self.off[r] as usize, self.off[r + 1] as usize);
        // Fill the whole capacity region so slack never holds stale
        // epochs when a later growth exposes it.
        self.data[lo..hi].fill(NEVER);
        self.len[r] = deg as u32;
        debug_assert_eq!(count_eq_u32(&self.data[lo..hi], NEVER), hi - lo);
    }

    /// Realigns every row to the given degrees, all entries [`NEVER`]
    /// — wholesale invalidation as one bulk fill when the capacities
    /// still fit.
    pub fn reset_all<I: IntoIterator<Item = usize>>(&mut self, degrees: I) {
        let mut lens = std::mem::take(&mut self.len);
        lens.clear();
        lens.extend(degrees.into_iter().map(|d| d as u32));
        let fits = lens.len() == self.off.len() - 1
            && lens
                .iter()
                .enumerate()
                .all(|(r, &d)| self.off[r + 1] - self.off[r] >= d);
        if fits {
            self.data.fill(NEVER);
            self.len = lens;
        } else {
            *self = HeardTable::new(lens.iter().map(|&d| d as usize));
        }
    }

    /// Re-layouts the arena so row `r` can hold `deg` entries,
    /// preserving every other row's live prefix. Rare: only mobility
    /// that grows a node's degree past its slack lands here.
    fn grow_row(&mut self, r: usize, deg: usize) {
        let rows = self.rows();
        let mut off = Vec::with_capacity(rows + 1);
        off.push(0u32);
        for i in 0..rows {
            let keep = (self.off[i + 1] - self.off[i]).max(self.len[i] + ROW_SLACK);
            let cap = if i == r {
                keep.max(deg as u32 + ROW_SLACK)
            } else {
                keep
            };
            off.push(off[i] + cap);
        }
        let mut data = vec![NEVER; *off.last().expect("off non-empty") as usize];
        #[allow(clippy::needless_range_loop)] // i indexes four parallel arenas
        for i in 0..rows {
            let (src, dst) = (self.off[i] as usize, off[i] as usize);
            let live = self.len[i] as usize;
            data[dst..dst + live].copy_from_slice(&self.data[src..src + live]);
        }
        self.off = off;
        self.data = data;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(n: usize, density: f64, seed: u64) -> BitWords {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = BitWords::new(n);
        for i in 0..n {
            if rng.random_bool(density) {
                w.set(i);
            }
        }
        w
    }

    #[test]
    fn bitline_is_cache_line_sized_and_aligned() {
        assert_eq!(std::mem::size_of::<BitLine>(), 64);
        assert_eq!(std::mem::align_of::<BitLine>(), 64);
    }

    #[test]
    fn bit_ops_roundtrip() {
        let mut w = BitWords::new(200);
        assert!(w.set(3));
        assert!(!w.set(3), "second set reports already-present");
        assert!(w.test(3));
        w.clear(3);
        assert!(!w.test(3));
        assert_eq!(w.len(), 200);
    }

    #[test]
    fn decode_matches_scalar_across_densities() {
        for (density, seed) in [(0.0, 1), (0.01, 2), (0.5, 3), (0.97, 4), (1.0, 5)] {
            for n in [0usize, 1, 63, 64, 65, 511, 512, 700] {
                let w = random_bits(n, density, seed);
                let (mut fast, mut scalar) = (Vec::new(), Vec::new());
                w.decode_into(&mut fast);
                w.decode_into_scalar(&mut scalar);
                assert_eq!(fast, scalar, "n = {n}, density = {density}");
            }
        }
    }

    #[test]
    fn decode_and_zero_drains() {
        let mut w = random_bits(300, 0.4, 9);
        let mut expect = Vec::new();
        w.decode_into(&mut expect);
        let mut got = Vec::new();
        w.decode_and_zero_into(&mut got);
        assert_eq!(got, expect);
        let mut empty = Vec::new();
        w.decode_into(&mut empty);
        assert!(empty.is_empty(), "drain must clear every bit");
    }

    #[test]
    fn fill_all_masks_the_tail() {
        for n in [1usize, 63, 64, 65, 127, 128, 129, 513] {
            let mut w = BitWords::new(n);
            w.fill_all();
            let mut out = Vec::new();
            w.decode_into(&mut out);
            assert_eq!(out.len(), n, "n = {n}");
            assert_eq!(out.last().map(|p| p.index()), Some(n - 1));
            w.zero_all();
            out.clear();
            w.decode_into(&mut out);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn sorted_join_matches_scalar_on_sorted_and_unsorted_keys() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..50 {
            let mut haystack: Vec<NodeId> = (0..rng.random_range(1..80u32))
                .map(|_| NodeId::new(rng.random_range(0..500)))
                .collect();
            haystack.sort_unstable();
            haystack.dedup();
            let mut keys: Vec<NodeId> = (0..rng.random_range(0..haystack.len() * 2))
                .map(|_| haystack[rng.random_range(0..haystack.len())])
                .collect();
            // Half the trials feed sorted keys (the independent-fates
            // shape), half leave them shuffled (contention media).
            if rng.random_bool(0.5) {
                keys.sort_unstable();
            }
            let mut fast = Vec::new();
            sorted_positions(&haystack, &keys, |idx, s| fast.push((idx, s)));
            let mut scalar = Vec::new();
            sorted_positions_scalar(&haystack, &keys, |idx, s| scalar.push((idx, s)));
            assert_eq!(fast, scalar);
        }
    }

    #[test]
    #[should_panic(expected = "1-neighbors")]
    fn sorted_join_rejects_absent_keys() {
        let haystack = [NodeId::new(1), NodeId::new(4)];
        sorted_positions(&haystack, &[NodeId::new(4); 9], |_, _| {});
        sorted_positions(&haystack, &[NodeId::new(2); 9], |_, _| {});
    }

    #[test]
    fn any_fresh_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..60 {
            let deg = rng.random_range(1..24usize);
            let neighbors: Vec<NodeId> = (0..deg as u32).map(|i| NodeId::new(i * 3)).collect();
            let epochs: Vec<u32> = (0..80).map(|_| rng.random_range(0..4)).collect();
            let heard_row: Vec<u32> = (0..deg)
                .map(|_| {
                    if rng.random_bool(0.2) {
                        NEVER
                    } else {
                        rng.random_range(0..4)
                    }
                })
                .collect();
            let mut senders: Vec<NodeId> = neighbors
                .iter()
                .copied()
                .filter(|_| rng.random_bool(0.6))
                .collect();
            senders.sort_unstable();
            assert_eq!(
                any_fresh(&heard_row, &epochs, &neighbors, &senders),
                any_fresh_scalar(&heard_row, &epochs, &neighbors, &senders),
            );
        }
    }

    #[test]
    fn count_eq_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(29);
        for n in [0usize, 1, 7, 64, 1000] {
            let row: Vec<u32> = (0..n).map(|_| rng.random_range(0..3)).collect();
            for v in 0..3 {
                assert_eq!(count_eq_u32(&row, v), count_eq_u32_scalar(&row, v));
            }
        }
    }

    #[test]
    fn heard_table_rows_and_writes() {
        let mut t = HeardTable::new([2usize, 0, 3]);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.row(0), &[NEVER, NEVER]);
        assert_eq!(t.row(1), &[] as &[u32]);
        t.set(2, 1, 7);
        assert_eq!(t.get(2, 1), 7);
        assert_eq!(t.row(2), &[NEVER, 7, NEVER]);
    }

    #[test]
    fn heard_table_reset_row_realigns_and_forgets() {
        let mut t = HeardTable::new([2usize, 2]);
        t.set(0, 0, 5);
        t.set(1, 1, 6);
        // Shrink, grow within slack, grow past slack: all forget.
        for deg in [1usize, 4, 11] {
            t.reset_row(0, deg);
            assert_eq!(t.row(0).len(), deg);
            assert!(t.row(0).iter().all(|&e| e == NEVER));
            assert_eq!(t.row(1), &[NEVER, 6], "other rows must be preserved");
        }
    }

    #[test]
    fn heard_table_reset_all_bulk_fills() {
        let mut t = HeardTable::new([3usize, 1]);
        t.set(0, 2, 9);
        t.reset_all([3usize, 1]);
        assert!(t.row(0).iter().all(|&e| e == NEVER));
        // Degree growth past every slack forces the rebuild path.
        t.reset_all([10usize, 1]);
        assert_eq!(t.row(0).len(), 10);
        assert!(t.row(0).iter().all(|&e| e == NEVER));
    }
}
