//! **Routing experiment**: the path-stretch cost of hierarchical
//! routing over the clustering — the application Section 1 motivates
//! clustering with. Compares the election metrics and the fusion rule
//! (bigger clusters ⇒ more traffic stays intra-cluster ⇒ less
//! stretch).

use mwn_baselines::{highest_degree_config, lowest_id_config};
use mwn_cluster::{
    mean_stretch_over, oracle, FlatRoutes, HeadRule, HierarchicalRoutes, OracleConfig,
};
use mwn_graph::builders;
use mwn_metrics::{RunningStats, Table};
use mwn_sim::Sweep;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::ExperimentScale;

/// Mean hierarchical-routing stretch per clustering policy.
#[derive(Clone, Debug, PartialEq)]
pub struct RoutingResult {
    /// Policy names.
    pub policies: Vec<String>,
    /// Mean stretch (hierarchical hops / shortest hops).
    pub stretch: Vec<f64>,
    /// Mean cluster count (context for the stretch numbers).
    pub clusters: Vec<f64>,
}

/// Runs the stretch comparison over `scale.runs` deployments.
pub fn run(scale: ExperimentScale) -> RoutingResult {
    let policies: Vec<(String, OracleConfig)> = vec![
        ("density (paper)".into(), OracleConfig::default()),
        (
            "density + fusion".into(),
            OracleConfig {
                rule: HeadRule::Fusion,
                ..OracleConfig::default()
            },
        ),
        ("degree".into(), highest_degree_config()),
        ("lowest-id".into(), lowest_id_config()),
    ];
    let mut result = RoutingResult {
        policies: Vec::new(),
        stretch: Vec::new(),
        clusters: Vec::new(),
    };
    for (name, cfg) in policies {
        let runs = Sweep::over(scale.runs, scale.seed ^ 0x207E).map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = builders::poisson(scale.lambda / 2.0, 0.1, &mut rng);
            let clustering = oracle(&topo, &cfg);
            // Route through the shared RoutingView abstraction — the
            // same view the traffic plane forwards packets over.
            let view = HierarchicalRoutes::new(&topo, clustering.clone());
            let stretch = mean_stretch_over(&topo, &view, 200, &mut rng);
            stretch.map(|s| (s, clustering.head_count() as f64))
        });
        let mut stretch = RunningStats::new();
        let mut clusters = RunningStats::new();
        for (s, c) in runs.into_iter().flatten() {
            stretch.push(s);
            clusters.push(c);
        }
        result.policies.push(name);
        result.stretch.push(stretch.mean());
        result.clusters.push(clusters.mean());
    }

    // Reference row: the flat shortest-path view has stretch exactly 1
    // by definition — it anchors the table and exercises the trait's
    // other implementation.
    let flat = Sweep::over(scale.runs.min(4), scale.seed ^ 0x207E).map(|seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = builders::poisson(scale.lambda / 2.0, 0.1, &mut rng);
        mean_stretch_over(&topo, &FlatRoutes, 200, &mut rng)
    });
    let mut flat_stretch = RunningStats::new();
    for s in flat.into_iter().flatten() {
        flat_stretch.push(s);
    }
    result.policies.push("flat shortest-path".into());
    result.stretch.push(flat_stretch.mean());
    result.clusters.push(f64::NAN);
    result
}

/// Formats the comparison table.
pub fn render(result: &RoutingResult) -> Table {
    let mut table = Table::new("Hierarchical routing stretch by clustering policy");
    table.set_headers(["policy", "mean stretch", "mean #clusters"]);
    for i in 0..result.policies.len() {
        let clusters = if result.clusters[i].is_finite() {
            format!("{:.1}", result.clusters[i])
        } else {
            "—".to_string()
        };
        table.add_row(
            result.policies[i].clone(),
            vec![format!("{:.3}", result.stretch[i]), clusters],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stretch_is_sane_for_all_policies() {
        let result = run(ExperimentScale {
            runs: 4,
            lambda: 500.0,
            ..ExperimentScale::quick()
        });
        assert_eq!(result.policies.len(), 5);
        for (i, p) in result.policies.iter().enumerate() {
            assert!(
                result.stretch[i] >= 1.0 && result.stretch[i] < 3.0,
                "{p}: stretch {}",
                result.stretch[i]
            );
        }
        // The flat baseline is exactly 1 by construction.
        let flat = result
            .policies
            .iter()
            .position(|p| p == "flat shortest-path")
            .unwrap();
        assert!((result.stretch[flat] - 1.0).abs() < 1e-9);
        // Fusion merges clusters: fewer of them than plain density.
        let density = result
            .policies
            .iter()
            .position(|p| p == "density (paper)")
            .unwrap();
        let fusion = result
            .policies
            .iter()
            .position(|p| p.contains("fusion"))
            .unwrap();
        assert!(result.clusters[fusion] <= result.clusters[density] + 0.5);
    }

    #[test]
    fn render_lists_policies() {
        let result = RoutingResult {
            policies: vec!["density".into()],
            stretch: vec![1.25],
            clusters: vec![20.0],
        };
        let s = render(&result).to_string();
        assert!(s.contains("1.250"));
    }
}
