//! The activity-driven engine's scaling story: once a silent protocol
//! stabilizes, dirty-set scheduling drops per-step messages to zero
//! and steps/sec by orders of magnitude versus re-running every guard.
//!
//! ```sh
//! cargo run --release -p mwn-bench --bin scaling             # 1k/10k/50k
//! cargo run --release -p mwn-bench --bin scaling -- --quick  # 1k (CI smoke)
//! ```
//!
//! Writes `BENCH_scaling.json` next to the working directory.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sizes: Vec<usize> = if args.iter().any(|a| a == "--quick") {
        vec![1_000]
    } else {
        vec![1_000, 10_000, 50_000]
    };
    let post_steps = if args.iter().any(|a| a == "--quick") {
        200
    } else {
        1_000
    };
    let points = mwn_bench::scaling::run(&sizes, 20050610, post_steps);
    println!("{}", mwn_bench::scaling::render(&points));
    for p in &points {
        assert_eq!(
            p.messages_per_step_stable_gated, 0.0,
            "silence violated at n = {}",
            p.nodes
        );
    }
    let json = mwn_bench::scaling::to_json(&points);
    let path = "BENCH_scaling.json";
    std::fs::write(path, &json).expect("write BENCH_scaling.json");
    println!("\nwrote {path}");
}
