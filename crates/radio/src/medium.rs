use mwn_graph::{NodeId, Topology};
use rand::rngs::StdRng;

/// The outcome of one broadcast round over a medium.
///
/// `heard[r]` lists the senders whose frame node `r` received this
/// round, in delivery order. `attempted` counts every (sender,
/// 1-neighbor) frame copy that could have been received; `delivered`
/// counts those that were. Their ratio is the empirical τ of the round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Delivery {
    /// Per-receiver list of heard senders.
    pub heard: Vec<Vec<NodeId>>,
    /// Number of (sender, neighbor) frame copies that were in range.
    pub attempted: usize,
    /// Number of frame copies actually received.
    pub delivered: usize,
}

impl Delivery {
    /// Creates an empty delivery for `n` receivers.
    pub fn empty(n: usize) -> Self {
        Delivery {
            heard: vec![Vec::new(); n],
            attempted: 0,
            delivered: 0,
        }
    }

    /// Fraction of in-range frame copies that were delivered
    /// (1.0 when nothing was attempted).
    pub fn success_rate(&self) -> f64 {
        if self.attempted == 0 {
            1.0
        } else {
            self.delivered as f64 / self.attempted as f64
        }
    }
}

/// A broadcast wireless medium.
///
/// Given the topology and the set of nodes that broadcast during one
/// step, a medium decides which neighbor actually receives which frame.
/// Implementations must only ever deliver frames between 1-neighbors
/// (radio range is a hard constraint in the unit-disk model).
///
/// The RNG is the concrete [`StdRng`] used across the workspace so that
/// media can be used as trait objects and every run stays reproducible
/// from a seed.
pub trait Medium {
    /// Delivers one round of broadcasts from `senders`.
    fn deliver(&mut self, topo: &Topology, senders: &[NodeId], rng: &mut StdRng) -> Delivery;

    /// A short human-readable name used in experiment output.
    fn name(&self) -> &'static str;
}

/// Empirically measures the per-frame success probability τ of a
/// medium over `steps` rounds in which *every* node broadcasts — the
/// worst-case contention the paper's Δ(τ) step must absorb.
///
/// Returns 1.0 if the topology has no edges (no frame can fail).
///
/// # Examples
///
/// ```
/// use mwn_graph::builders;
/// use mwn_radio::{measure_tau, BernoulliLoss};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let topo = builders::complete(10);
/// let tau = measure_tau(&mut BernoulliLoss::new(0.7), &topo, 200, &mut rng);
/// assert!((tau - 0.7).abs() < 0.05);
/// ```
pub fn measure_tau<M: Medium + ?Sized>(
    medium: &mut M,
    topo: &Topology,
    steps: usize,
    rng: &mut StdRng,
) -> f64 {
    let senders: Vec<NodeId> = topo.nodes().collect();
    let mut attempted = 0usize;
    let mut delivered = 0usize;
    for _ in 0..steps {
        let d = medium.deliver(topo, &senders, rng);
        attempted += d.attempted;
        delivered += d.delivered;
    }
    if attempted == 0 {
        1.0
    } else {
        delivered as f64 / attempted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_delivery_success_rate_is_one() {
        let d = Delivery::empty(3);
        assert_eq!(d.success_rate(), 1.0);
        assert_eq!(d.heard.len(), 3);
    }

    #[test]
    fn success_rate_is_ratio() {
        let d = Delivery {
            heard: vec![],
            attempted: 4,
            delivered: 3,
        };
        assert_eq!(d.success_rate(), 0.75);
    }
}
