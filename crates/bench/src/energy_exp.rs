//! **Energy extension experiment** (paper future work: "consider
//! energy constraints … energy-efficient organization algorithms"):
//! battery-aware head rotation vs the static election — network
//! lifetime and load spreading.

use mwn_cluster::{simulate_rotation, EnergyModel, OracleConfig, RotationOutcome};
use mwn_graph::builders;
use mwn_metrics::{RunningStats, Table};
use mwn_sim::Sweep;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::ExperimentScale;

/// Mean longevity statistics, rotating vs static.
#[derive(Clone, Debug, PartialEq)]
pub struct EnergyResult {
    /// Rounds simulated.
    pub rounds: u64,
    /// Mean outcome with battery-aware rotation.
    pub rotating: MeanOutcome,
    /// Mean outcome with the energy-blind election.
    pub fixed: MeanOutcome,
}

/// Averages of a [`RotationOutcome`] over runs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MeanOutcome {
    /// Mean minimum battery at the end.
    pub min_battery: f64,
    /// Mean battery at the end.
    pub mean_battery: f64,
    /// Mean round of the first node death (rounds+1 when nobody died).
    pub first_death: f64,
    /// Mean number of distinct nodes that served as head.
    pub distinct_heads: f64,
}

fn mean_of(outcomes: &[RotationOutcome], rounds: u64) -> MeanOutcome {
    let stat = |f: &dyn Fn(&RotationOutcome) -> f64| -> f64 {
        outcomes.iter().map(f).collect::<RunningStats>().mean()
    };
    MeanOutcome {
        min_battery: stat(&|o| o.min_battery),
        mean_battery: stat(&|o| o.mean_battery),
        first_death: stat(&|o| o.first_death.unwrap_or(rounds + 1) as f64),
        distinct_heads: stat(&|o| o.distinct_heads as f64),
    }
}

/// Runs the lifetime comparison over `scale.runs` deployments.
pub fn run(scale: ExperimentScale) -> EnergyResult {
    let rounds = 400;
    let model = EnergyModel {
        initial: 50.0,
        head_cost: 1.0,
        member_cost: 0.01,
        bands: 25,
    };
    let both: Vec<(RotationOutcome, RotationOutcome)> = Sweep::over(scale.runs, scale.seed ^ 0xE9)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = builders::poisson(scale.lambda / 4.0, 0.12, &mut rng);
            let rotating = simulate_rotation(&topo, &model, &OracleConfig::default(), rounds, true);
            let fixed = simulate_rotation(&topo, &model, &OracleConfig::default(), rounds, false);
            (rotating, fixed)
        });
    let (rotating, fixed): (Vec<_>, Vec<_>) = both.into_iter().unzip();
    EnergyResult {
        rounds,
        rotating: mean_of(&rotating, rounds),
        fixed: mean_of(&fixed, rounds),
    }
}

/// Formats the comparison table.
pub fn render(result: &EnergyResult) -> Table {
    let mut table = Table::new(format!(
        "Energy-aware head rotation vs static election ({} rounds)",
        result.rounds
    ));
    table.set_headers(["", "rotating", "static"]);
    let row = |label: &str, f: &dyn Fn(&MeanOutcome) -> f64, decimals: usize| {
        (
            label.to_string(),
            vec![
                format!("{:.decimals$}", f(&result.rotating)),
                format!("{:.decimals$}", f(&result.fixed)),
            ],
        )
    };
    for (label, cells) in [
        row("min battery at end", &|o| o.min_battery, 1),
        row("mean battery at end", &|o| o.mean_battery, 1),
        row("first node death (round)", &|o| o.first_death, 0),
        row("distinct heads served", &|o| o.distinct_heads, 1),
    ] {
        table.add_row(label, cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_extends_lifetime() {
        let result = run(ExperimentScale {
            runs: 4,
            lambda: 600.0,
            ..ExperimentScale::quick()
        });
        assert!(
            result.rotating.first_death > result.fixed.first_death,
            "rotating {} vs fixed {}",
            result.rotating.first_death,
            result.fixed.first_death
        );
        assert!(result.rotating.distinct_heads > result.fixed.distinct_heads);
        assert!(result.rotating.min_battery >= result.fixed.min_battery);
    }

    #[test]
    fn render_compares_columns() {
        let result = EnergyResult {
            rounds: 400,
            rotating: MeanOutcome {
                min_battery: 30.0,
                mean_battery: 45.0,
                first_death: 401.0,
                distinct_heads: 80.0,
            },
            fixed: MeanOutcome {
                min_battery: 0.0,
                mean_battery: 44.0,
                first_death: 50.0,
                distinct_heads: 12.0,
            },
        };
        let s = render(&result).to_string();
        assert!(s.contains("rotating"));
        assert!(s.contains("first node death"));
    }
}
