//! Clock glue: one traffic step per control-plane step, on either
//! driver.
//!
//! The data plane is deliberately clock-agnostic — it only ever sees
//! "a topology, right now, and maybe a routing view". These helpers
//! bind it to the two execution models:
//!
//! * [`run_rounds`] — one [`crate::TrafficPlane::on_step`] after every
//!   synchronous [`Network::step`] (the paper's Δ(τ) rounds);
//! * [`run_events`] — one traffic step per *logical step boundary* of
//!   the continuous-time [`EventDriver`] (every beacon period), so
//!   packet TTLs and latencies stay measured in beacon periods.
//!
//! Both take a **view factory** `FnMut(&Topology, &[P::State]) ->
//! Option<R>`: the bridge from protocol outputs to routes. Return
//! `None` while the protocol is mid-restabilization (e.g.
//! [`mwn_cluster::extract_clustering`] on a transient state) and the
//! plane will queue, age and strand packets accordingly — that is the
//! loss-during-restabilization measurement. The factory is only
//! invoked when the plane actually has unresolved routes, so a quiet
//! stable network pays nothing.

use mwn_cluster::RoutingView;
use mwn_graph::Topology;
use mwn_radio::Medium;
use mwn_sim::{EventDriver, Network, Protocol};

use crate::plane::TrafficPlane;
use crate::report::TrafficReport;

/// Runs traffic over the synchronous round driver: `steps` rounds, or
/// until the workload drains, whichever comes first. Returns the
/// plane's report at exit.
pub fn run_rounds<P, M, R, F>(
    net: &mut Network<P, M>,
    plane: &mut TrafficPlane,
    steps: u64,
    mut view: F,
) -> TrafficReport
where
    P: Protocol,
    M: Medium,
    R: RoutingView,
    F: FnMut(&Topology, &[P::State]) -> Option<R>,
{
    for _ in 0..steps {
        net.step();
        let v = if plane.needs_routes() {
            view(net.topology(), net.states())
        } else {
            None
        };
        plane.on_step(net.topology(), v.as_ref());
        if plane.is_drained() {
            break;
        }
    }
    plane.report()
}

/// Runs traffic over the continuous-time event driver: `periods`
/// logical steps of `period` seconds each (normally the beacon
/// period), or until the workload drains. Returns the plane's report
/// at exit.
pub fn run_events<P, M, R, F>(
    driver: &mut EventDriver<P, M>,
    plane: &mut TrafficPlane,
    periods: u64,
    period: f64,
    mut view: F,
) -> TrafficReport
where
    P: Protocol,
    M: Medium,
    R: RoutingView,
    F: FnMut(&Topology, &[P::State]) -> Option<R>,
{
    let t0 = driver.time();
    for k in 1..=periods {
        driver.run_until_time(t0 + k as f64 * period);
        let v = if plane.needs_routes() {
            view(driver.topology(), driver.states())
        } else {
            None
        };
        plane.on_step(driver.topology(), v.as_ref());
        if plane.is_drained() {
            break;
        }
    }
    plane.report()
}
