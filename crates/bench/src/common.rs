//! Shared experiment plumbing: scales, argument parsing, and the
//! scenario-driven helpers every table uses.

use mwn_cluster::{
    extract_clustering, extract_dag_ids, ClusterConfig, Clustering, DagProtocol, DagVariant,
    DensityCluster, NameSpace,
};
use mwn_graph::Topology;
use mwn_sim::{Scenario, StopWhen};

/// How much work an experiment does.
///
/// The paper averages each statistic "over 1000 simulations"; `Full`
/// matches that, `Default` trades a little precision for minutes of
/// runtime, `Quick` is for smoke tests and Criterion benches.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExperimentScale {
    /// Independent simulation runs per configuration.
    pub runs: usize,
    /// Poisson intensity of the random deployments (paper: 1000).
    pub lambda: f64,
    /// Grid side (paper: ≈√1000 ⇒ 32).
    pub grid_side: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// The paper's scale: 1000-run averages, λ = 1000, 32×32 grids.
    pub fn full() -> Self {
        ExperimentScale {
            runs: 1000,
            lambda: 1000.0,
            grid_side: 32,
            seed: 20050610,
        }
    }

    /// Default scale: 200-run averages (≈ the paper's numbers to two
    /// digits, minutes of runtime on a laptop).
    pub fn default_scale() -> Self {
        ExperimentScale {
            runs: 200,
            ..Self::full()
        }
    }

    /// Smoke-test scale: a handful of runs on smaller deployments.
    pub fn quick() -> Self {
        ExperimentScale {
            runs: 5,
            lambda: 250.0,
            grid_side: 16,
            seed: 20050610,
        }
    }

    /// Parses `--quick`, `--full`, `--runs N` and `--serial` from the
    /// process arguments, starting from the default scale.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = if args.iter().any(|a| a == "--quick") {
            Self::quick()
        } else if args.iter().any(|a| a == "--full") {
            Self::full()
        } else {
            Self::default_scale()
        };
        if let Some(pos) = args.iter().position(|a| a == "--runs") {
            if let Some(n) = args.get(pos + 1).and_then(|s| s.parse::<usize>().ok()) {
                scale.runs = n.max(1);
            }
        }
        scale
    }

    /// The parallel seed fan-out for this scale (honouring a
    /// `--serial` process argument, for wall-clock comparisons).
    pub fn sweep(&self) -> mwn_sim::Sweep {
        self.sweep_with(self.seed)
    }

    /// Like [`ExperimentScale::sweep`] with an explicit base seed —
    /// experiments that measure several statistics decorrelate them by
    /// xoring a constant into the base.
    pub fn sweep_with(&self, base_seed: u64) -> mwn_sim::Sweep {
        let sweep = mwn_sim::Sweep::over(self.runs, base_seed);
        if std::env::args().any(|a| a == "--serial") {
            sweep.serial()
        } else {
            sweep
        }
    }
}

/// The transmission ranges of the paper's Tables 4 and 5.
pub const TABLE45_RADII: [f64; 3] = [0.05, 0.08, 0.1];

/// The transmission ranges of the paper's Table 3.
pub const TABLE3_RADII: [f64; 6] = [0.05, 0.06, 0.07, 0.08, 0.09, 0.1];

/// Runs the full distributed clustering protocol on a perfect medium
/// until stable; returns the clustering, the stabilized DAG ids and
/// the measured stabilization step count.
///
/// # Panics
///
/// Panics if the configuration is invalid for the topology, or if the
/// protocol fails to stabilize within `max_steps` (which would falsify
/// the paper's Lemma 2 — a test failure, not a runtime condition to
/// handle).
pub fn run_distributed(
    topo: Topology,
    config: ClusterConfig,
    seed: u64,
    max_steps: u64,
) -> (Clustering, Vec<u32>, u64) {
    let mut net = Scenario::new(DensityCluster::new(config))
        .topology(topo)
        .seed(seed)
        .validate(move |t| config.validate_for(t))
        .build()
        .expect("experiment configuration valid for topology");
    let stabilized = net
        .run_to(&StopWhen::stable_for(4).within(max_steps))
        .expect_stable("protocol stabilizes (Lemma 2)");
    let clustering = extract_clustering(net.states()).expect("stable state is clean");
    let dag_ids = extract_dag_ids(net.states());
    (clustering, dag_ids, stabilized)
}

/// Runs only the DAG renaming (algorithm N1) until stable; returns the
/// names and the stabilization step count — the Table 3 measurement.
pub fn run_dag(
    topo: Topology,
    gamma: NameSpace,
    variant: DagVariant,
    seed: u64,
    max_steps: u64,
) -> (Vec<u32>, u64) {
    let mut net = Scenario::new(DagProtocol::new(gamma, variant, 4))
        .topology(topo)
        .seed(seed)
        .build()
        .expect("valid scenario");
    let stabilized = net
        .run_to(&StopWhen::stable_for(4).within(max_steps))
        .expect_stable("N1 stabilizes (Theorem 1)");
    let names = net.states().iter().map(|s| s.dag_id).collect();
    (names, stabilized)
}

/// γ = δ² for a topology, clamped to be a valid name space (> δ).
pub fn gamma_for(topo: &Topology) -> NameSpace {
    let delta = topo.max_degree().max(1);
    NameSpace::delta_squared(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_cluster::is_locally_unique;
    use mwn_graph::builders;

    #[test]
    fn scales_are_ordered() {
        assert!(ExperimentScale::quick().runs < ExperimentScale::default_scale().runs);
        assert!(ExperimentScale::default_scale().runs < ExperimentScale::full().runs);
        assert_eq!(ExperimentScale::full().runs, 1000);
    }

    #[test]
    fn sweep_matches_scale() {
        let scale = ExperimentScale::quick();
        assert_eq!(scale.sweep().len(), scale.runs);
        assert_ne!(
            scale.sweep().seeds(),
            scale.sweep_with(scale.seed ^ 0xAA).seeds(),
            "xored bases decorrelate the grids"
        );
    }

    #[test]
    fn run_distributed_produces_clean_output() {
        let topo = builders::grid(8, 8, 0.2);
        let (c, ids, steps) = run_distributed(topo, ClusterConfig::default(), 1, 300);
        assert!(c.head_count() >= 1);
        assert_eq!(ids.len(), 64);
        assert!(steps < 300);
    }

    #[test]
    fn run_dag_produces_proper_coloring() {
        let topo = builders::grid(8, 8, 0.2);
        let gamma = gamma_for(&topo);
        let (names, steps) = run_dag(topo.clone(), gamma, DagVariant::SmallestIdRedraws, 2, 300);
        assert!(is_locally_unique(&topo, &names));
        assert!(steps < 50);
    }
}
