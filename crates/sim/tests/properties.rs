//! Property-based tests of the execution substrate: information speed,
//! driver determinism, and fault-plan correctness, checked with a
//! reference protocol whose fixpoint is known exactly (self-stabilizing
//! max-flood: every node learns the maximum id in its component).

use mwn_graph::{builders, traversal, NodeId, Point2, Topology};
use mwn_radio::{BernoulliLoss, PerfectMedium, SlottedCsma};
use mwn_sim::{
    Activity, Corruptible, EventConfig, EventDriver, Fault, FaultPlan, Lie, Network, Observable,
    Protocol, Region,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct MaxFlood;
impl Protocol for MaxFlood {
    type State = u32;
    type Beacon = u32;
    fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 {
        node.value()
    }
    fn beacon(&self, _node: NodeId, state: &u32) -> u32 {
        *state
    }
    fn receive(&self, _node: NodeId, state: &mut u32, _from: NodeId, beacon: &u32, _now: u64) {
        *state = (*state).max(*beacon);
    }
    fn update(&self, node: NodeId, state: &mut u32, _now: u64, _rng: &mut StdRng) {
        *state = (*state).max(node.value());
    }
}
impl Corruptible for MaxFlood {
    /// Max-flooding is monotone, so it can only heal *undershooting*
    /// corruption (an overshooting value would be a different, larger
    /// "max" forever — max-flood alone is not self-stabilizing against
    /// it, which is precisely why the paper's protocol re-derives all
    /// shared variables from scratch instead of folding them).
    fn corrupt(&self, node: NodeId, state: &mut u32, rng: &mut StdRng) {
        use rand::Rng;
        *state = rng.random_range(0..=node.value());
    }
}

/// Gated max-flood: same fixpoint as [`MaxFlood`], but silent once a
/// node's beacon stops changing — the shape that exercises the
/// statistical-occupancy bookkeeping under CSMA.
struct GatedFlood;
impl Protocol for GatedFlood {
    type State = u32;
    type Beacon = u32;
    fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 {
        node.value()
    }
    fn beacon(&self, _node: NodeId, state: &u32) -> u32 {
        *state
    }
    fn receive(&self, _node: NodeId, state: &mut u32, _from: NodeId, beacon: &u32, _now: u64) {
        *state = (*state).max(*beacon);
    }
    fn update(&self, node: NodeId, state: &mut u32, _now: u64, _rng: &mut StdRng) {
        *state = (*state).max(node.value());
    }
    fn activity(&self) -> Activity {
        Activity::Gated
    }
    fn beacon_changed(&self, old: &u32, new: &u32) -> bool {
        old != new
    }
}
impl Observable for GatedFlood {
    type Output = u32;
    fn output(&self, _node: NodeId, state: &u32) -> u32 {
        *state
    }
}
impl Corruptible for GatedFlood {
    fn corrupt(&self, _node: NodeId, state: &mut u32, _rng: &mut StdRng) {
        *state = 0;
    }
}

/// One perturbation of a running gated-CSMA network, for interleaving
/// with steps in the occupancy-consistency property.
#[derive(Clone, Debug)]
enum Disturbance {
    Step(u8),
    Corrupt(u32),
    CorruptFraction(f64),
    Isolate(u32),
    Jitter { node: u32, dx: f64, dy: f64 },
    Crash { node: u32, dark_for: u64 },
    Byzantine { node: u32, window: u64 },
    Partition { prefix: u32, window: u64 },
    JamOne { node: u32, window: u64 },
}

fn disturbance_strategy() -> impl Strategy<Value = Disturbance> {
    // The vendored proptest subset has no `prop_oneof!`; a discriminant
    // plus a payload tuple selects the variant just as uniformly.
    (
        0u8..9,
        0u32..1024,
        0.05f64..1.0,
        -0.15f64..0.15,
        -0.15f64..0.15,
    )
        .prop_map(|(kind, node, fraction, dx, dy)| {
            let window = u64::from(node % 7) + 1;
            match kind {
                0 => Disturbance::Step((node % 5) as u8 + 1),
                1 => Disturbance::Corrupt(node),
                2 => Disturbance::CorruptFraction(fraction),
                3 => Disturbance::Isolate(node),
                4 => Disturbance::Jitter { node, dx, dy },
                5 => Disturbance::Crash {
                    node,
                    dark_for: window,
                },
                6 => Disturbance::Byzantine { node, window },
                7 => Disturbance::Partition {
                    prefix: node,
                    window,
                },
                _ => Disturbance::JamOne { node, window },
            }
        })
}

fn topo_strategy() -> impl Strategy<Value = Topology> {
    (2usize..40, 10u32..35, 0u64..u64::MAX).prop_map(|(n, r, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        builders::uniform(n, f64::from(r) / 100.0, &mut rng)
    })
}

/// The exact fixpoint: every node holds the max id of its component.
fn component_max(topo: &Topology) -> Vec<u32> {
    let mut expected = vec![0u32; topo.len()];
    for component in traversal::connected_components(topo) {
        let max = component.iter().map(|p| p.value()).max().unwrap();
        for p in component {
            expected[p.index()] = max;
        }
    }
    expected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The round driver moves information exactly one hop per step:
    /// after k steps a node knows the max id within its k-ball.
    #[test]
    fn round_driver_information_speed(topo in topo_strategy(), k in 1u64..6) {
        let mut net = Network::new(MaxFlood, PerfectMedium, topo.clone(), 1);
        net.run(k);
        for p in topo.nodes() {
            let mut ball = topo.k_neighborhood(p, k as usize);
            ball.push(p);
            let expected = ball.iter().map(|q| q.value()).max().unwrap();
            prop_assert_eq!(*net.state(p), expected, "node {} after {} steps", p, k);
        }
    }

    /// Both drivers converge to the identical, exact fixpoint — from
    /// cold start and after corrupting every node.
    #[test]
    fn drivers_agree_on_the_fixpoint(topo in topo_strategy(), seed in 0u64..10_000) {
        let expected = component_max(&topo);
        let mut net = Network::new(MaxFlood, PerfectMedium, topo.clone(), seed);
        net.run_until_stable(|_, s| *s, 3, 500).expect("round driver converges");
        prop_assert_eq!(net.states(), expected.as_slice());
        net.corrupt_all();
        net.run_until_stable(|_, s| *s, 3, 500).expect("round driver reconverges");
        prop_assert_eq!(net.states(), expected.as_slice());

        let mut driver = EventDriver::new(MaxFlood, topo, EventConfig::default(), seed);
        driver
            .run_until_stable(|_, s| *s, 1.0, 8, 2000.0)
            .expect("event driver converges");
        prop_assert_eq!(driver.states(), expected.as_slice());
    }

    /// Loss only delays convergence; it never changes the fixpoint.
    #[test]
    fn lossy_runs_reach_the_same_fixpoint(
        topo in topo_strategy(),
        seed in 0u64..10_000,
        tau_percent in 25u32..95,
    ) {
        let expected = component_max(&topo);
        let mut net = Network::new(
            MaxFlood,
            BernoulliLoss::new(f64::from(tau_percent) / 100.0),
            topo,
            seed,
        );
        net.run_until_stable(|_, s| *s, 10, 20_000).expect("converges");
        prop_assert_eq!(net.states(), expected.as_slice());
    }

    /// A fault plan never prevents eventual convergence once its last
    /// fault has fired (convergence property under transient faults).
    #[test]
    fn fault_plans_end_in_convergence(
        topo in topo_strategy(),
        seed in 0u64..10_000,
        fault_step in 1u64..20,
        fraction in 0.1f64..1.0,
    ) {
        let expected = component_max(&topo);
        let mut plan = FaultPlan::new();
        plan.at(fault_step, Fault::CorruptFraction(fraction))
            .at(fault_step + 3, Fault::CorruptAll);
        let mut net = Network::new(MaxFlood, PerfectMedium, topo, seed);
        plan.run(&mut net, fault_step + 4).expect("well-formed plan");
        net.run_until_stable(|_, s| *s, 3, 1000).expect("converges after faults");
        prop_assert_eq!(net.states(), expected.as_slice());
    }

    /// The incrementally-maintained slot-occupancy summary equals a
    /// from-scratch recount after *arbitrary* interleavings of steps,
    /// state corruption, node isolation, mobility jitter, and the full
    /// adversary model (crash-recover, Byzantine beacons, partition/
    /// heal, regional jam — including their delayed healing followups
    /// firing mid-script) — the invariant that makes gated CSMA's
    /// statistical collision fold trustworthy under churn.
    #[test]
    fn occupancy_matches_recount_under_arbitrary_churn(
        topo in topo_strategy(),
        seed in 0u64..10_000,
        script in proptest::collection::vec(disturbance_strategy(), 1..25),
    ) {
        let n = topo.len() as u32;
        let mut net = Network::new(GatedFlood, SlottedCsma::new(8), topo, seed);
        prop_assert!(net.is_gated(), "gated CSMA must gate");
        for disturbance in script {
            match disturbance {
                Disturbance::Step(k) => {
                    for _ in 0..k {
                        net.step();
                    }
                }
                Disturbance::Corrupt(p) => net.corrupt(NodeId::new(p % n)),
                Disturbance::CorruptFraction(f) => {
                    net.corrupt_fraction(f);
                }
                Disturbance::Isolate(p) => net.isolate(NodeId::new(p % n)),
                Disturbance::Jitter { node, dx, dy } => {
                    let p = NodeId::new(node % n);
                    let pos = net.topology().positions().expect("uniform topos have positions")
                        [p.index()];
                    let moved = Point2::new(
                        (pos.x + dx).clamp(0.0, 1.0),
                        (pos.y + dy).clamp(0.0, 1.0),
                    );
                    net.apply_moves(&[(p, moved)]);
                }
                Disturbance::Crash { node, dark_for } => {
                    net.inject(&Fault::CrashRecover {
                        node: NodeId::new(node % n),
                        dark_for,
                    })
                    .expect("node count unchanged");
                }
                Disturbance::Byzantine { node, window } => {
                    net.inject(&Fault::ByzantineBeacon {
                        node: NodeId::new(node % n),
                        lie: if node % 2 == 0 { Lie::Forged } else { Lie::Replayed },
                        until: net.now() + window,
                    })
                    .expect("node count unchanged");
                }
                Disturbance::Partition { prefix, window } => {
                    let cut: Vec<NodeId> =
                        (0..1 + prefix % n.max(2).saturating_sub(1)).map(NodeId::new).collect();
                    net.inject(&Fault::PartitionHeal {
                        cut,
                        heal_at: net.now() + window,
                    })
                    .expect("node count unchanged");
                }
                Disturbance::JamOne { node, window } => {
                    net.inject(&Fault::Jam {
                        region: Region::Nodes(vec![NodeId::new(node % n)]),
                        until: net.now() + window,
                    })
                    .expect("node count unchanged");
                }
            }
            let occ = net.occupancy().expect("gated CSMA maintains occupancy");
            prop_assert_eq!(
                occ,
                &occ.recount(net.topology()),
                "incremental summary diverged from the recount"
            );
        }
    }

    /// Runs are bit-identical across repeats with the same seed, for
    /// both drivers (the reproducibility contract).
    #[test]
    fn drivers_are_deterministic(topo in topo_strategy(), seed in 0u64..10_000) {
        let round = |topo: &Topology| {
            let mut net = Network::new(MaxFlood, BernoulliLoss::new(0.6), topo.clone(), seed);
            net.run(15);
            net.states().to_vec()
        };
        prop_assert_eq!(round(&topo), round(&topo));
        let event = |topo: &Topology| {
            let mut d = EventDriver::new(MaxFlood, topo.clone(), EventConfig::default(), seed);
            d.run_until_time(10.0);
            d.states().to_vec()
        };
        prop_assert_eq!(event(&topo), event(&topo));
    }
}
