//! Visualisation of network clusterings — reproduces the paper's
//! Figures 2 and 3 (grid clusterings without / with the DAG renaming)
//! as SVG files, plus a terminal-friendly ASCII renderer for grids.
//!
//! # Examples
//!
//! ```
//! use mwn_cluster::{oracle, OracleConfig};
//! use mwn_graph::builders;
//! use mwn_viz::svg_clustering;
//!
//! let topo = builders::grid(6, 6, 0.25);
//! let clustering = oracle(&topo, &OracleConfig::default());
//! let svg = svg_clustering(&topo, &clustering);
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("<circle"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ascii;
mod svg;

pub use ascii::ascii_grid_clustering;
pub use svg::{svg_clustering, write_svg_clustering};
