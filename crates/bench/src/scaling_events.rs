//! The shared activity engine under the **continuous clock**: event
//! throughput and message cost before vs. after stabilization, gated
//! vs. eager, across network sizes.
//!
//! The round driver's silence story (`scaling`) has a continuous-time
//! twin: the rewritten `EventDriver` keeps one beacon-slot event per
//! *armed* node, so once a gated protocol stabilizes the queue drains
//! and advancing the clock across a quiet interval costs O(1) — zero
//! events, zero messages — while the eager reference keeps popping
//! O(n) beacon slots per period forever. This bench quantifies the
//! difference; `BENCH_events.json` is the payload CI archives, and the
//! CI smoke asserts the quiet interval is perfectly silent.

use std::time::Instant;

use mwn_cluster::{ClusterConfig, DensityCluster};
use mwn_graph::builders;
use mwn_sim::{EventConfig, Scenario};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One network size's continuous-time measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct EventScalingPoint {
    /// Poisson intensity requested.
    pub intensity: usize,
    /// Actual node count of the deployment.
    pub nodes: usize,
    /// Undirected link count.
    pub edges: usize,
    /// Simulated time (beacon periods) until the election output
    /// stabilized (gated run).
    pub stabilization_time: f64,
    /// Mean broadcasts per beacon period while converging.
    pub messages_per_period_converging: f64,
    /// Broadcasts across the measured quiet interval, gated — the
    /// silence claim: must be 0.
    pub quiet_messages_gated: u64,
    /// Events processed across the measured quiet interval, gated —
    /// must be 0 (the queue is empty).
    pub quiet_events_gated: u64,
    /// Simulated beacon periods advanced per wall-clock second across
    /// the quiet interval, gated.
    pub quiet_periods_per_sec_gated: f64,
    /// The same rate for the eager reference, which keeps firing every
    /// node's beacon slot although nothing can change.
    pub quiet_periods_per_sec_eager: f64,
    /// Broadcasts per period in the eager reference (always ≈ n).
    pub messages_per_period_eager: f64,
}

impl EventScalingPoint {
    /// Post-stabilization speedup of the gated clock over the eager
    /// reference.
    pub fn speedup(&self) -> f64 {
        if self.quiet_periods_per_sec_eager == 0.0 {
            1.0
        } else {
            self.quiet_periods_per_sec_gated / self.quiet_periods_per_sec_eager
        }
    }
}

fn radius_for(n: usize, degree_target: f64) -> f64 {
    (degree_target / (n as f64 * std::f64::consts::PI)).sqrt()
}

/// Runs the continuous-time scaling measurement at one Poisson
/// intensity. `quiet_periods` is the simulated length of the
/// post-stabilization interval timed for the gated driver (the eager
/// reference advances at most 20 periods — it pays O(n) per period).
///
/// # Panics
///
/// Panics if the protocol fails to stabilize within the time budget
/// (which would falsify Lemma 2).
pub fn run_point(intensity: usize, seed: u64, quiet_periods: f64) -> EventScalingPoint {
    let radius = radius_for(intensity, 8.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = builders::poisson(intensity as f64, radius, &mut rng);
    let nodes = topo.len();
    let edges = topo.edge_count();

    let mut driver = Scenario::new(DensityCluster::new(ClusterConfig::default().event_driven()))
        .topology(topo)
        .seed(seed)
        .build_events(EventConfig::default())
        .expect("valid event scenario");
    assert!(driver.is_gated(), "EventDriven + PerfectMedium must gate");
    let stabilization_time = driver
        .run_until_output_stable(1.0, 3, 10_000.0)
        .expect("the election stabilizes (Lemma 2)");
    let messages_per_period_converging = driver.messages_total() as f64 / driver.time().max(1.0);
    // Drain the last pending beacons (a quiet output does not
    // instantly imply every sender retired), then measure pure
    // silence.
    driver.run_until_time(driver.time() + 20.0);

    let messages_before = driver.messages_total();
    let events_before = driver.events_processed();
    let start = Instant::now();
    driver.run_until_time(driver.time() + quiet_periods);
    let gated_elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let quiet_messages_gated = driver.messages_total() - messages_before;
    let quiet_events_gated = driver.events_processed() - events_before;

    // Same network pinned eager: every beacon slot of every node keeps
    // firing although nothing can change.
    driver.set_eager(true);
    let eager_periods = quiet_periods.min(20.0);
    let messages_before = driver.messages_total();
    let start = Instant::now();
    driver.run_until_time(driver.time() + eager_periods);
    let eager_elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let messages_per_period_eager =
        (driver.messages_total() - messages_before) as f64 / eager_periods;

    EventScalingPoint {
        intensity,
        nodes,
        edges,
        stabilization_time,
        messages_per_period_converging,
        quiet_messages_gated,
        quiet_events_gated,
        quiet_periods_per_sec_gated: quiet_periods / gated_elapsed,
        quiet_periods_per_sec_eager: eager_periods / eager_elapsed,
        messages_per_period_eager,
    }
}

/// Runs the full size sweep.
pub fn run(sizes: &[usize], seed: u64, quiet_periods: f64) -> Vec<EventScalingPoint> {
    sizes
        .iter()
        .map(|&n| run_point(n, seed, quiet_periods))
        .collect()
}

/// Renders the results as a JSON array (hand-rolled: the workspace's
/// offline `serde` shim has no serializer), the `BENCH_events.json`
/// payload CI archives.
pub fn to_json(points: &[EventScalingPoint]) -> String {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "  {{\"intensity\": {}, \"nodes\": {}, \"edges\": {}, ",
                "\"stabilization_time\": {:.1}, ",
                "\"messages_per_period_converging\": {:.2}, ",
                "\"quiet_messages_gated\": {}, ",
                "\"quiet_events_gated\": {}, ",
                "\"quiet_periods_per_sec_gated\": {:.1}, ",
                "\"quiet_periods_per_sec_eager\": {:.1}, ",
                "\"messages_per_period_eager\": {:.1}, ",
                "\"post_stabilization_speedup\": {:.1}}}{}"
            ),
            p.intensity,
            p.nodes,
            p.edges,
            p.stabilization_time,
            p.messages_per_period_converging,
            p.quiet_messages_gated,
            p.quiet_events_gated,
            p.quiet_periods_per_sec_gated,
            p.quiet_periods_per_sec_eager,
            p.messages_per_period_eager,
            p.speedup(),
            if i + 1 == points.len() { "" } else { "," }
        ));
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Renders a human-readable table.
pub fn render(points: &[EventScalingPoint]) -> mwn_metrics::Table {
    let mut table =
        mwn_metrics::Table::new("Continuous-time engine: post-stabilization cost (gated vs eager)");
    let mut headers = vec!["n".to_string()];
    headers.extend(points.iter().map(|p| p.nodes.to_string()));
    table.set_headers(headers);
    table.add_numeric_row(
        "stabilization time (periods)",
        &points
            .iter()
            .map(|p| p.stabilization_time)
            .collect::<Vec<_>>(),
        1,
    );
    table.add_numeric_row(
        "msgs/period converging",
        &points
            .iter()
            .map(|p| p.messages_per_period_converging)
            .collect::<Vec<_>>(),
        1,
    );
    table.add_numeric_row(
        "quiet msgs (gated)",
        &points
            .iter()
            .map(|p| p.quiet_messages_gated as f64)
            .collect::<Vec<_>>(),
        0,
    );
    table.add_numeric_row(
        "quiet events (gated)",
        &points
            .iter()
            .map(|p| p.quiet_events_gated as f64)
            .collect::<Vec<_>>(),
        0,
    );
    table.add_numeric_row(
        "periods/s quiet (gated)",
        &points
            .iter()
            .map(|p| p.quiet_periods_per_sec_gated)
            .collect::<Vec<_>>(),
        0,
    );
    table.add_numeric_row(
        "periods/s quiet (eager)",
        &points
            .iter()
            .map(|p| p.quiet_periods_per_sec_eager)
            .collect::<Vec<_>>(),
        0,
    );
    table.add_numeric_row(
        "msgs/period (eager)",
        &points
            .iter()
            .map(|p| p.messages_per_period_eager)
            .collect::<Vec<_>>(),
        0,
    );
    table.add_numeric_row(
        "speedup",
        &points
            .iter()
            .map(EventScalingPoint::speedup)
            .collect::<Vec<_>>(),
        1,
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_point_is_silent_after_stabilization() {
        let p = run_point(300, 7, 100.0);
        assert!(p.nodes > 200);
        assert_eq!(
            p.quiet_messages_gated, 0,
            "a stabilized silent protocol sends nothing"
        );
        assert_eq!(
            p.quiet_events_gated, 0,
            "a quiet interval processes no events"
        );
        assert!(
            p.messages_per_period_eager > p.nodes as f64 * 0.5,
            "eager re-beacons everyone roughly once a period"
        );
        assert!(p.messages_per_period_converging > 0.0);
        assert!(p.speedup() > 1.0, "skipping all work must be faster");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let p = run_point(150, 3, 20.0);
        let json = to_json(std::slice::from_ref(&p));
        assert!(json.starts_with("[\n") && json.ends_with("]\n"));
        assert!(json.contains("\"quiet_messages_gated\": 0"));
        assert!(!render(&[p]).to_string().is_empty());
    }
}
