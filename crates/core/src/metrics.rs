//! The evaluation metrics of the paper's Section 5, packaged for the
//! experiment harness: cluster counts, tree lengths, head
//! eccentricities and head persistence under mobility.

use mwn_graph::Topology;
use serde::{Deserialize, Serialize};

use crate::Clustering;

/// Summary statistics of one clustering — the columns of the paper's
/// Tables 4 and 5.
///
/// # Examples
///
/// ```
/// use mwn_cluster::{oracle, ClusteringStats, OracleConfig};
/// use mwn_graph::builders::fig1_example;
///
/// let topo = fig1_example();
/// let clustering = oracle(&topo, &OracleConfig::default());
/// let stats = ClusteringStats::of(&topo, &clustering).unwrap();
/// assert_eq!(stats.clusters, 2.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusteringStats {
    /// Number of clusters (cluster-heads per surface unit on the unit
    /// square).
    pub clusters: f64,
    /// Mean over clusters of the tree length (max parent-chain depth
    /// in radio hops).
    pub mean_tree_length: f64,
    /// Mean over clusters of the head eccentricity `ẽ(H(u)/C(u))`.
    pub mean_head_eccentricity: f64,
    /// Mean number of nodes per cluster.
    pub mean_cluster_size: f64,
}

impl ClusteringStats {
    /// Computes the statistics; `None` for an empty clustering or one
    /// with broken parent chains (non-stabilized snapshots).
    pub fn of(topo: &Topology, clustering: &Clustering) -> Option<ClusteringStats> {
        Some(ClusteringStats {
            clusters: clustering.head_count() as f64,
            mean_tree_length: clustering.mean_tree_length(topo)?,
            mean_head_eccentricity: clustering.mean_head_eccentricity(topo)?,
            mean_cluster_size: clustering.mean_cluster_size()?,
        })
    }
}

/// Head persistence across a sequence of clustering snapshots: element
/// `i` is the fraction of snapshot `i`'s heads still heads in snapshot
/// `i + 1` — the paper's mobility-stability measurement ("percentage
/// of cluster-heads which remained cluster-heads after each 2
/// seconds").
pub fn head_persistence_series(snapshots: &[Clustering]) -> Vec<f64> {
    snapshots
        .windows(2)
        .map(|w| w[1].head_persistence_from(&w[0]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{oracle, OracleConfig};
    use mwn_graph::{builders, NodeId};

    #[test]
    fn stats_on_paper_example() {
        let topo = builders::fig1_example();
        let c = oracle(&topo, &OracleConfig::default());
        let stats = ClusteringStats::of(&topo, &c).unwrap();
        assert_eq!(stats.clusters, 2.0);
        assert_eq!(stats.mean_cluster_size, 5.0);
        assert!(stats.mean_tree_length >= 1.0);
        assert!(stats.mean_head_eccentricity >= 1.0);
    }

    #[test]
    fn empty_clustering_has_no_stats() {
        let topo = mwn_graph::Topology::empty(0);
        let c = Clustering::new(vec![], vec![]);
        assert!(ClusteringStats::of(&topo, &c).is_none());
    }

    #[test]
    fn persistence_series() {
        let id = NodeId::new;
        let a = Clustering::new(vec![id(0), id(1)], vec![id(0), id(1)]); // heads {0,1}
        let b = Clustering::new(vec![id(0), id(0)], vec![id(0), id(0)]); // heads {0}
        let series = head_persistence_series(&[a.clone(), b.clone(), b.clone()]);
        assert_eq!(series, vec![0.5, 1.0]);
        assert!(head_persistence_series(&[a]).is_empty());
    }
}
