//! Statistical slot occupancy: the contract that lets contention media
//! gate silent senders.
//!
//! Under CSMA a node cannot simply stop being simulated when it goes
//! quiet — its transmissions were part of every neighbor's collision
//! odds. The gated-contention mode keeps those odds without any
//! per-silent-node work: the engine maintains an [`Occupancy`] summary
//! (who is silent-but-transmitting, and how many such nodes are in
//! range of each receiver), and the medium folds that population into
//! its collision/capture draws *statistically*, on derived
//! per-(tick, receiver, sender) streams ([`ContentionStreams`]).
//!
//! The fold preserves the per-frame marginal collision probabilities of
//! the eager reference; joint slot correlations across copies are not
//! preserved, so the gated ≡ eager claim for contention media is
//! distributional (Wilson-band agreement on stabilization time,
//! delivery ratio and outputs), not byte-identical.

use mwn_graph::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer — the same mixer `mwn-sim` uses for its derived
/// streams, duplicated here because the dependency points the other way
/// (mwn-sim depends on mwn-radio). Drivers hand this module already
/// derived base seeds; the mixer only splits them further.
#[inline]
fn mix(base: u64, stream: u64) -> u64 {
    let mut z = base.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Read-only view of the silent-but-transmitting population that a
/// gated-contention medium folds into its draws.
///
/// Two implementations ship: the engine's incrementally maintained
/// [`Occupancy`] (round clock: occupied = retired) and
/// [`FullOccupancy`] (event clock: every other radio beacons each
/// period, so every neighbor is a statistical contender).
pub trait OccupancyView {
    /// Whether `q` is silent-but-transmitting (a statistical contender).
    fn is_occupied(&self, q: NodeId) -> bool;

    /// Number of occupied 1-neighbors of `r` — the receiver-side
    /// contender count media use for early-outs and weights.
    fn count_at(&self, topo: &Topology, r: NodeId) -> u32;
}

/// Incrementally maintained occupancy summary: a membership bitmap plus
/// per-receiver counts of occupied in-range nodes.
///
/// The engine keeps the invariant `count_at(r) == |{q ∈ N(r) :
/// is_occupied(q)}|` through retirement, wake-ups, faults and topology
/// deltas; `tests/gated_csma.rs` property-checks it against a
/// from-scratch recount ([`Occupancy::recount`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Occupancy {
    occupied: Vec<bool>,
    counts: Vec<u32>,
    total: usize,
}

impl Occupancy {
    /// Creates an empty summary for `n` nodes (nobody occupied).
    pub fn new(n: usize) -> Self {
        Occupancy {
            occupied: vec![false; n],
            counts: vec![0; n],
            total: 0,
        }
    }

    /// Number of occupied nodes.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Marks `q` occupied, bumping the count at each of its neighbors.
    /// No-op if already occupied.
    pub fn occupy(&mut self, q: NodeId, topo: &Topology) {
        if self.occupied[q.index()] {
            return;
        }
        self.occupied[q.index()] = true;
        self.total += 1;
        for &r in topo.neighbors(q) {
            self.counts[r.index()] += 1;
        }
    }

    /// Clears `q`'s occupancy, dropping the count at each of its
    /// neighbors. No-op if not occupied.
    pub fn release(&mut self, q: NodeId, topo: &Topology) {
        if !self.occupied[q.index()] {
            return;
        }
        self.occupied[q.index()] = false;
        self.total -= 1;
        for &r in topo.neighbors(q) {
            self.counts[r.index()] -= 1;
        }
    }

    /// Releases everyone. O(1) when already empty, so pinned-eager and
    /// independent-fates runs pay nothing for the bookkeeping.
    pub fn release_all(&mut self) {
        if self.total == 0 {
            return;
        }
        self.occupied.iter_mut().for_each(|o| *o = false);
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }

    /// Adjusts the counts for one removed edge `(a, b)`: each endpoint
    /// loses the other's occupancy contribution. Call **before**
    /// releasing the touched nodes when a topology delta is applied, so
    /// the counts stay exact against the new neighbor lists.
    pub fn edge_removed(&mut self, a: NodeId, b: NodeId) {
        if self.occupied[b.index()] {
            self.counts[a.index()] -= 1;
        }
        if self.occupied[a.index()] {
            self.counts[b.index()] -= 1;
        }
    }

    /// Adjusts the counts for one added edge `(a, b)`.
    pub fn edge_added(&mut self, a: NodeId, b: NodeId) {
        if self.occupied[b.index()] {
            self.counts[a.index()] += 1;
        }
        if self.occupied[a.index()] {
            self.counts[b.index()] += 1;
        }
    }

    /// From-scratch recount over `topo` — the O(n + m) reference the
    /// incremental maintenance is property-tested against.
    pub fn recount(&self, topo: &Topology) -> Occupancy {
        let mut fresh = Occupancy::new(self.occupied.len());
        for q in topo.nodes() {
            if self.occupied[q.index()] {
                fresh.occupy(q, topo);
            }
        }
        fresh
    }
}

impl OccupancyView for Occupancy {
    #[inline]
    fn is_occupied(&self, q: NodeId) -> bool {
        self.occupied[q.index()]
    }

    #[inline]
    fn count_at(&self, _topo: &Topology, r: NodeId) -> u32 {
        self.counts[r.index()]
    }
}

/// The event clock's view: **every** other radio is a statistical
/// contender.
///
/// On the continuous clock the eager reference transmits at every
/// beacon period, so whether a node is currently gated or not, its
/// frames contend against the full in-range population. Using the same
/// per-frame law in both modes is what makes gated ≡ eager tight there
/// — and it needs no maintenance at all.
#[derive(Clone, Copy, Debug, Default)]
pub struct FullOccupancy;

impl OccupancyView for FullOccupancy {
    #[inline]
    fn is_occupied(&self, _q: NodeId) -> bool {
        true
    }

    #[inline]
    fn count_at(&self, topo: &Topology, r: NodeId) -> u32 {
        topo.degree(r) as u32
    }
}

/// Derived per-(tick, entity) RNG streams for one gated-contention
/// delivery round.
///
/// A frame copy's fate must depend only on `(seed, tick, receiver,
/// sender)` — never on how many *other* silent nodes exist or in which
/// order they were folded — so a medium draws every statistical
/// decision off these streams instead of a shared sequential RNG:
///
/// * [`ContentionStreams::sender`] — per-(tick, sender): the sender's
///   own slot pick and its phantom carrier-sense fate (all its copies
///   defer consistently).
/// * [`ContentionStreams::copy`] — per-(tick, receiver, sender): the
///   statistical collision/capture fold for one frame copy.
/// * [`ContentionStreams::round`] — per-tick: the active-active
///   channel-race order (shared by the whole round).
#[derive(Clone, Copy, Debug)]
pub struct ContentionStreams {
    sender_base: u64,
    copy_base: u64,
    tick: u64,
}

impl ContentionStreams {
    /// Creates the streams for one delivery tick. `sender_base` and
    /// `copy_base` are driver-derived stream bases (decorrelated from
    /// each other and from every other stream the driver splits).
    pub fn new(sender_base: u64, copy_base: u64, tick: u64) -> Self {
        ContentionStreams {
            sender_base,
            copy_base,
            tick,
        }
    }

    /// The delivery tick these streams are keyed by.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Per-(tick, sender) stream.
    pub fn sender(&self, s: NodeId) -> StdRng {
        StdRng::seed_from_u64(mix(mix(self.sender_base, self.tick), s.index() as u64))
    }

    /// Per-(tick, receiver, sender) stream for one frame copy.
    pub fn copy(&self, r: NodeId, s: NodeId) -> StdRng {
        StdRng::seed_from_u64(mix(
            mix(mix(self.copy_base, self.tick), r.index() as u64),
            s.index() as u64,
        ))
    }

    /// Per-tick stream shared by the whole round (channel-race order).
    pub fn round(&self) -> StdRng {
        StdRng::seed_from_u64(mix(mix(self.sender_base, self.tick), u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_graph::builders;
    use rand::Rng;

    #[test]
    fn occupy_release_maintain_neighbor_counts() {
        let topo = builders::star(4); // hub 0, leaves 1..=3
        let mut occ = Occupancy::new(4);
        occ.occupy(NodeId::new(1), &topo);
        occ.occupy(NodeId::new(2), &topo);
        assert_eq!(occ.count_at(&topo, NodeId::new(0)), 2);
        assert_eq!(occ.count_at(&topo, NodeId::new(1)), 0);
        assert!(occ.is_occupied(NodeId::new(1)));
        assert_eq!(occ.total(), 2);
        occ.occupy(NodeId::new(1), &topo); // idempotent
        assert_eq!(occ.count_at(&topo, NodeId::new(0)), 2);
        occ.release(NodeId::new(1), &topo);
        assert_eq!(occ.count_at(&topo, NodeId::new(0)), 1);
        occ.release(NodeId::new(1), &topo); // idempotent
        assert_eq!(occ.total(), 1);
        assert_eq!(occ.recount(&topo), occ);
    }

    #[test]
    fn release_all_resets_everything() {
        let topo = builders::complete(5);
        let mut occ = Occupancy::new(5);
        for q in topo.nodes() {
            occ.occupy(q, &topo);
        }
        assert_eq!(occ.total(), 5);
        occ.release_all();
        assert_eq!(occ, Occupancy::new(5));
        occ.release_all(); // O(1) no-op when empty
        assert_eq!(occ.total(), 0);
    }

    #[test]
    fn edge_deltas_keep_counts_exact() {
        // Counts after edge_removed/edge_added must match a recount on
        // the mutated topology.
        let before = mwn_graph::Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let after = mwn_graph::Topology::from_edges(4, &[(0, 1), (2, 3), (0, 3)]).unwrap();
        let mut occ = Occupancy::new(4);
        occ.occupy(NodeId::new(1), &before);
        occ.occupy(NodeId::new(3), &before);
        occ.edge_removed(NodeId::new(1), NodeId::new(2));
        occ.edge_added(NodeId::new(0), NodeId::new(3));
        assert_eq!(occ.recount(&after), occ);
    }

    #[test]
    fn full_occupancy_counts_the_whole_neighborhood() {
        let topo = builders::star(6);
        assert!(FullOccupancy.is_occupied(NodeId::new(3)));
        assert_eq!(FullOccupancy.count_at(&topo, NodeId::new(0)), 5);
        assert_eq!(FullOccupancy.count_at(&topo, NodeId::new(1)), 1);
    }

    #[test]
    fn contention_streams_are_reproducible_and_distinct() {
        let st = ContentionStreams::new(7, 11, 3);
        let a: u64 = st.copy(NodeId::new(1), NodeId::new(2)).random();
        let b: u64 = st.copy(NodeId::new(1), NodeId::new(2)).random();
        assert_eq!(a, b, "same coordinates, same stream");
        let swapped: u64 = st.copy(NodeId::new(2), NodeId::new(1)).random();
        assert_ne!(a, swapped, "receiver/sender coordinates are ordered");
        let other_tick: u64 = ContentionStreams::new(7, 11, 4)
            .copy(NodeId::new(1), NodeId::new(2))
            .random();
        assert_ne!(a, other_tick);
        let s: u64 = st.sender(NodeId::new(1)).random();
        let round: u64 = st.round().random();
        assert_ne!(s, round);
    }
}
