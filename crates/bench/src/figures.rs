//! **Figures 2 and 3**: the grid clustering drawn with and without the
//! DAG renaming at R = 0.05. Figure 2 (no DAG) shows a single giant
//! cluster spanning the network; Figure 3 (with DAG) shows many small
//! clusters.

use mwn_cluster::{oracle, Clustering, DagVariant, OracleConfig};
use mwn_graph::{builders, Topology};
use mwn_viz::{ascii_grid_clustering, svg_clustering};

use crate::common::{gamma_for, run_dag, ExperimentScale};

/// Both figures' underlying data.
#[derive(Clone, Debug)]
pub struct FiguresResult {
    /// The grid topology (R = 0.05 scaled to the grid side).
    pub topo: Topology,
    /// Grid side used.
    pub side: usize,
    /// Figure 2: clustering without the DAG (one giant cluster).
    pub fig2: Clustering,
    /// Figure 3: clustering with the DAG (many small clusters).
    pub fig3: Clustering,
}

/// Computes both figures on a `scale.grid_side`² grid.
pub fn run(scale: ExperimentScale) -> FiguresResult {
    // R = 0.05 is calibrated for the paper's 32×32 grid (8-neighbor
    // connectivity); scale it with the side so smaller grids keep the
    // same connectivity pattern.
    let radius = 0.05 * 31.0 / (scale.grid_side.max(2) - 1) as f64;
    let topo = builders::grid(scale.grid_side, scale.grid_side, radius);
    let fig2 = oracle(&topo, &OracleConfig::default());
    let gamma = gamma_for(&topo);
    let (names, _) = run_dag(
        topo.clone(),
        gamma,
        DagVariant::SmallestIdRedraws,
        scale.seed,
        1000,
    );
    let fig3 = oracle(
        &topo,
        &OracleConfig {
            tiebreak: Some(names),
            ..OracleConfig::default()
        },
    );
    FiguresResult {
        side: scale.grid_side,
        topo,
        fig2,
        fig3,
    }
}

/// Renders a figure as SVG.
pub fn svg(result: &FiguresResult, with_dag: bool) -> String {
    svg_clustering(
        &result.topo,
        if with_dag { &result.fig3 } else { &result.fig2 },
    )
}

/// Renders a figure as terminal ASCII art.
pub fn ascii(result: &FiguresResult, with_dag: bool) -> String {
    ascii_grid_clustering(
        if with_dag { &result.fig3 } else { &result.fig2 },
        result.side,
        result.side,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_is_one_giant_cluster_fig3_many() {
        let result = run(ExperimentScale::quick());
        assert_eq!(result.fig2.head_count(), 1, "Figure 2: one cluster");
        assert!(
            result.fig3.head_count() >= 5,
            "Figure 3: many clusters, got {}",
            result.fig3.head_count()
        );
    }

    #[test]
    fn renders_are_nonempty() {
        let result = run(ExperimentScale {
            grid_side: 8,
            ..ExperimentScale::quick()
        });
        assert!(svg(&result, false).contains("<svg"));
        assert!(svg(&result, true).contains("<svg"));
        assert_eq!(ascii(&result, true).lines().count(), 8);
    }
}
