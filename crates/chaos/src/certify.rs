//! The stabilization certifier: campaigns in, certificates out.

use std::collections::BTreeMap;

use mwn_graph::Topology;
use mwn_metrics::{percentiles, wilson_interval};

use crate::campaign::CampaignSpec;
use crate::harness::ChaosHarness;

/// Certifier knobs. The defaults suit the repo's test deployments
/// (tens of nodes, diameter-bounded convergence).
#[derive(Clone, Copy, Debug)]
pub struct CertifyConfig {
    /// Consecutive unchanged output samples (one per logical step)
    /// that count as "stabilized", and the length of each closure
    /// check's quiet interval.
    pub quiet: u64,
    /// Healing horizon: logical steps the certifier waits for
    /// restabilization after a fault's scripted after-effects have
    /// fired. A network still changing past the horizon fails that
    /// injection's convergence — and whatever is stale then is the
    /// liveness audit's problem.
    pub horizon: u64,
    /// Length of the forced-eager sweep of the liveness audit.
    pub sweep: u64,
}

impl Default for CertifyConfig {
    fn default() -> Self {
        CertifyConfig {
            quiet: 5,
            horizon: 400,
            sweep: 3,
        }
    }
}

/// Restabilization-time statistics for one fault class, with a Wilson
/// interval (z = 1.96) on the restabilization proportion.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassStats {
    /// The fault class ([`mwn_sim::Fault::kind_name`]).
    pub class: String,
    /// Faults of this class injected.
    pub injections: usize,
    /// How many restabilized within the horizon.
    pub restabilized: usize,
    /// Median restabilization time (logical steps from injection to
    /// the last output change), over the restabilized injections.
    pub p50: f64,
    /// 95th-percentile restabilization time.
    pub p95: f64,
    /// Worst observed restabilization time.
    pub worst: f64,
    /// Wilson lower bound on the restabilization proportion.
    pub wilson_low: f64,
    /// Wilson upper bound on the restabilization proportion.
    pub wilson_high: f64,
}

/// The machine-readable verdict of one certification run: one
/// (protocol, medium, driver) cell driven through one campaign.
///
/// Byte-deterministic on the round driver: the same spec, seed and
/// deployment produce an identical certificate on every run.
#[derive(Clone, Debug, PartialEq)]
pub struct Certificate {
    /// Protocol label of the cell.
    pub protocol: String,
    /// Medium label of the cell.
    pub medium: String,
    /// Driver label of the cell.
    pub driver: String,
    /// The campaign's seed.
    pub seed: u64,
    /// Faults injected.
    pub injections: usize,
    /// Whether the cold-start run stabilized before the campaign.
    pub initially_stabilized: bool,
    /// Closure checks performed (quiet intervals observed fault-free).
    pub closure_checks: usize,
    /// Closure violations: a quiet interval in which the output of a
    /// supposedly legitimate configuration moved.
    pub closure_violations: usize,
    /// Nodes whose output the final forced-eager sweep changed — each
    /// one a gated-asleep node with stale state past the healing
    /// horizon ([`liveness_audit`]). Zero for a correct engine.
    pub stale_after_audit: usize,
    /// Per-fault-class restabilization statistics, sorted by class.
    pub classes: Vec<ClassStats>,
    /// Worst restabilization time observed across all classes.
    pub worst_restabilization: f64,
}

impl Certificate {
    /// `true` when the cell earned a clean certificate: stabilized
    /// initially, no closure violation, nothing stale after the
    /// audit, and every injection restabilized within the horizon.
    pub fn is_clean(&self) -> bool {
        self.initially_stabilized
            && self.closure_violations == 0
            && self.stale_after_audit == 0
            && self.classes.iter().all(|c| c.restabilized == c.injections)
    }

    /// One-line human summary.
    pub fn headline(&self) -> String {
        format!(
            "[{} / {} / {}] {}: {} faults, worst restabilization {} steps, \
             closure {}/{} clean, {} stale after audit",
            self.protocol,
            self.medium,
            self.driver,
            if self.is_clean() { "CLEAN" } else { "DIRTY" },
            self.injections,
            self.worst_restabilization,
            self.closure_checks - self.closure_violations,
            self.closure_checks,
            self.stale_after_audit,
        )
    }

    /// The certificate as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        let classes: Vec<String> = self
            .classes
            .iter()
            .map(|c| {
                format!(
                    "{{\"class\":\"{}\",\"injections\":{},\"restabilized\":{},\
                     \"p50\":{:.1},\"p95\":{:.1},\"worst\":{:.1},\
                     \"wilson_low\":{:.4},\"wilson_high\":{:.4}}}",
                    c.class,
                    c.injections,
                    c.restabilized,
                    c.p50,
                    c.p95,
                    c.worst,
                    c.wilson_low,
                    c.wilson_high
                )
            })
            .collect();
        format!(
            "{{\"protocol\":\"{}\",\"medium\":\"{}\",\"driver\":\"{}\",\
             \"seed\":{},\"injections\":{},\"initially_stabilized\":{},\
             \"closure_checks\":{},\"closure_violations\":{},\
             \"stale_after_audit\":{},\"worst_restabilization\":{:.1},\
             \"clean\":{},\"classes\":[{}]}}",
            self.protocol,
            self.medium,
            self.driver,
            self.seed,
            self.injections,
            self.initially_stabilized,
            self.closure_checks,
            self.closure_violations,
            self.stale_after_audit,
            self.worst_restabilization,
            self.is_clean(),
            classes.join(",")
        )
    }
}

/// Advances until the outputs are unchanged for `quiet` consecutive
/// steps; returns the steps until the last change, or `None` if still
/// changing at the horizon.
fn stabilize<H: ChaosHarness>(h: &mut H, quiet: u64, horizon: u64) -> Option<u64> {
    let mut prev = h.outputs();
    let mut streak = 0u64;
    let mut waited = 0u64;
    while streak < quiet {
        if waited >= horizon {
            return None;
        }
        h.advance(1);
        waited += 1;
        let cur = h.outputs();
        if cur == prev {
            streak += 1;
        } else {
            prev = cur;
            streak = 0;
        }
    }
    Some(waited - quiet)
}

/// One closure check: a legitimate configuration must not move over a
/// fault-free quiet interval. Returns `true` when it held.
fn closure_holds<H: ChaosHarness>(h: &mut H, quiet: u64) -> bool {
    let before = h.outputs();
    h.advance(quiet);
    h.outputs() == before
}

/// The hard liveness audit: pins the driver eager, sweeps `sweep`
/// logical steps, unpins, and counts the nodes whose output moved.
///
/// Eager scheduling re-runs every guard and re-delivers every beacon,
/// so for a silent protocol in a legitimate configuration the sweep
/// is observably a no-op — **unless** some node was gated-asleep with
/// stale state, in which case the sweep heals it and its output
/// changes. Every nonzero count is an engine wake-rule bug (see the
/// deliberately-broken-rule test in `tests/chaos_certification.rs`).
pub fn liveness_audit<H: ChaosHarness>(h: &mut H, sweep: u64) -> usize {
    let before = h.outputs();
    h.set_eager(true);
    h.advance(sweep.max(1));
    h.set_eager(false);
    let after = h.outputs();
    before
        .iter()
        .zip(after.iter())
        .filter(|(b, a)| b != a)
        .count()
}

/// Runs `spec`'s campaign on `harness` and certifies the cell.
///
/// The flow: stabilize from cold start → closure check → for each
/// scheduled fault, inject, wait out its scripted after-effects
/// (resurrection, healing, lie expiry — [`mwn_sim::Fault::settles_by`]), then
/// measure restabilization against the horizon → final closure check
/// → forced-eager liveness audit.
///
/// `topo` is the deployment the harness was built on (the campaign's
/// victims and regions are drawn against it); labels name the cell in
/// the certificate.
pub fn certify<H: ChaosHarness>(
    harness: &mut H,
    protocol: &str,
    medium: &str,
    driver: &str,
    spec: &CampaignSpec,
    topo: &Topology,
    cfg: &CertifyConfig,
) -> Certificate {
    let schedule = spec.schedule(topo);
    let mut cert = Certificate {
        protocol: protocol.to_string(),
        medium: medium.to_string(),
        driver: driver.to_string(),
        seed: spec.seed,
        injections: schedule.len(),
        initially_stabilized: false,
        closure_checks: 0,
        closure_violations: 0,
        stale_after_audit: 0,
        classes: Vec::new(),
        worst_restabilization: 0.0,
    };

    cert.initially_stabilized = stabilize(harness, cfg.quiet, cfg.horizon).is_some();
    cert.closure_checks += 1;
    if !closure_holds(harness, cfg.quiet) {
        cert.closure_violations += 1;
    }

    // (restabilization samples, injections, restabilized) per class.
    let mut per_class: BTreeMap<&'static str, (Vec<f64>, usize, usize)> = BTreeMap::new();
    for (step, fault) in &schedule {
        if *step > harness.now() {
            harness.advance(*step - harness.now());
        }
        let injected_at = harness.now();
        harness.inject(fault);
        let settled = fault.settles_by(injected_at);
        if settled > harness.now() {
            harness.advance(settled - harness.now());
        }
        let settle_span = settled - injected_at;
        let entry = per_class.entry(fault.kind_name()).or_default();
        entry.1 += 1;
        if let Some(extra) = stabilize(harness, cfg.quiet, cfg.horizon) {
            entry.2 += 1;
            entry.0.push((settle_span + extra) as f64);
        }
    }

    cert.closure_checks += 1;
    if !closure_holds(harness, cfg.quiet) {
        cert.closure_violations += 1;
    }
    cert.stale_after_audit = liveness_audit(harness, cfg.sweep);

    for (class, (mut samples, injections, restabilized)) in per_class {
        let qs = percentiles(&mut samples, &[0.5, 0.95, 1.0]);
        let (wilson_low, wilson_high) = wilson_interval(restabilized, injections, 1.96);
        let worst = if samples.is_empty() { 0.0 } else { qs[2] };
        cert.worst_restabilization = cert.worst_restabilization.max(worst);
        cert.classes.push(ClassStats {
            class: class.to_string(),
            injections,
            restabilized,
            p50: if samples.is_empty() { 0.0 } else { qs[0] },
            p95: if samples.is_empty() { 0.0 } else { qs[1] },
            worst,
            wilson_low,
            wilson_high,
        });
    }
    cert
}
