use serde::{Deserialize, Serialize};

use crate::{GraphError, NodeId, Point2};

/// An undirected network graph with optional node positions.
///
/// This is the paper's system model (Section 3): a set `V` of nodes,
/// each node `p` with a neighborhood `N_p ⊆ V` determined by radio
/// range, bidirectional links (`q ∈ N_p ⇔ p ∈ N_q`) and no self-loops
/// (`p ∉ N_p`). Adjacency lists are kept sorted so membership tests are
/// logarithmic and iteration order is deterministic.
///
/// # Examples
///
/// ```
/// use mwn_graph::{NodeId, Topology};
///
/// let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)])?;
/// assert_eq!(topo.degree(NodeId::new(1)), 2);
/// assert!(topo.has_edge(NodeId::new(2), NodeId::new(1)));
/// assert_eq!(topo.edge_count(), 3);
/// # Ok::<(), mwn_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    adj: Vec<Vec<NodeId>>,
    positions: Option<Vec<Point2>>,
    radius: Option<f64>,
}

impl Topology {
    /// Creates a topology with `n` nodes and no edges.
    pub fn empty(n: usize) -> Self {
        Topology {
            adj: vec![Vec::new(); n],
            positions: None,
            radius: None,
        }
    }

    /// Creates a topology from an explicit undirected edge list.
    ///
    /// Duplicate edges are collapsed. The resulting topology has no
    /// positions; attach them later with [`Topology::with_positions`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`
    /// and [`GraphError::SelfLoop`] for an edge `(u, u)`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Result<Self, GraphError> {
        let mut topo = Topology::empty(n);
        for &(u, v) in edges {
            topo.add_edge(NodeId::new(u), NodeId::new(v))?;
        }
        Ok(topo)
    }

    /// Creates the unit-disk graph over `positions`: nodes `p` and `q`
    /// are linked iff their Euclidean distance is at most `radius`.
    ///
    /// This is how the paper deploys its simulation topologies: points
    /// in the unit square with transmission ranges `R ∈ [0.05, 0.1]`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidRadius`] if `radius` is not finite
    /// and positive.
    pub fn unit_disk(positions: Vec<Point2>, radius: f64) -> Result<Self, GraphError> {
        if !radius.is_finite() || radius <= 0.0 {
            return Err(GraphError::InvalidRadius { radius });
        }
        let n = positions.len();
        let mut topo = Topology {
            adj: vec![Vec::new(); n],
            positions: Some(positions),
            radius: Some(radius),
        };
        topo.rebuild_unit_disk_edges();
        Ok(topo)
    }

    /// Attaches positions to an edge-list topology (e.g. for rendering).
    ///
    /// # Panics
    ///
    /// Panics if `positions.len()` differs from the node count.
    pub fn with_positions(mut self, positions: Vec<Point2>) -> Self {
        assert_eq!(
            positions.len(),
            self.adj.len(),
            "positions must cover every node"
        );
        self.positions = Some(positions);
        self
    }

    /// Recomputes all unit-disk edges from the current positions.
    ///
    /// Used by the mobility substrate after moving nodes. A spatial
    /// hash grid keeps the rebuild near-linear in the node count for
    /// the sparse deployments the paper considers.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no positions or no radius (i.e. it was
    /// not built by [`Topology::unit_disk`]).
    pub fn rebuild_unit_disk_edges(&mut self) {
        let radius = self.radius.expect("unit-disk rebuild requires a radius");
        let positions = self
            .positions
            .as_ref()
            .expect("unit-disk rebuild requires positions");
        let n = positions.len();
        for list in &mut self.adj {
            list.clear();
        }
        if n == 0 {
            return;
        }
        // Spatial hash: cells of side `radius`, so neighbors of a point
        // can only live in the 3×3 block of cells around it.
        let cell_of = |p: Point2| -> (i64, i64) {
            ((p.x / radius).floor() as i64, (p.y / radius).floor() as i64)
        };
        let mut grid: std::collections::HashMap<(i64, i64), Vec<u32>> =
            std::collections::HashMap::new();
        for (i, &p) in positions.iter().enumerate() {
            grid.entry(cell_of(p)).or_default().push(i as u32);
        }
        let r2 = radius * radius;
        for (i, &p) in positions.iter().enumerate() {
            let (cx, cy) = cell_of(p);
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let Some(bucket) = grid.get(&(cx + dx, cy + dy)) else {
                        continue;
                    };
                    for &j in bucket {
                        if (j as usize) > i && p.distance_squared(positions[j as usize]) <= r2 {
                            self.adj[i].push(NodeId::new(j));
                            self.adj[j as usize].push(NodeId::new(i as u32));
                        }
                    }
                }
            }
        }
        for list in &mut self.adj {
            list.sort_unstable();
        }
    }

    /// Adds the undirected edge `(u, v)`; a no-op if already present.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`].
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        let n = self.adj.len();
        for node in [u, v] {
            if node.index() >= n {
                return Err(GraphError::NodeOutOfRange { node, len: n });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if let Err(pos) = self.adj[u.index()].binary_search(&v) {
            self.adj[u.index()].insert(pos, v);
            let pos = self.adj[v.index()]
                .binary_search(&u)
                .expect_err("adjacency lists must stay symmetric");
            self.adj[v.index()].insert(pos, u);
        }
        Ok(())
    }

    /// Removes the undirected edge `(u, v)`; a no-op if absent.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) {
        if u.index() >= self.adj.len() || v.index() >= self.adj.len() {
            return;
        }
        if let Ok(pos) = self.adj[u.index()].binary_search(&v) {
            self.adj[u.index()].remove(pos);
            if let Ok(pos) = self.adj[v.index()].binary_search(&u) {
                self.adj[v.index()].remove(pos);
            }
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// `true` when the topology has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Iterator over all node identifiers, in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len() as u32).map(NodeId::new)
    }

    /// The 1-neighborhood `N_p`, sorted by identifier. `p ∉ N_p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn neighbors(&self, p: NodeId) -> &[NodeId] {
        &self.adj[p.index()]
    }

    /// The degree `|N_p|`.
    #[inline]
    pub fn degree(&self, p: NodeId) -> usize {
        self.adj[p.index()].len()
    }

    /// The maximum degree `δ` over all nodes (0 for an empty graph).
    ///
    /// The paper assumes a known constant `δ` bounding every `|N_p|`;
    /// the DAG name space γ is sized from it (|γ| = δ or δ²).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Mean degree over all nodes (0 for an empty graph).
    pub fn mean_degree(&self) -> f64 {
        if self.adj.is_empty() {
            return 0.0;
        }
        let total: usize = self.adj.iter().map(Vec::len).sum();
        total as f64 / self.adj.len() as f64
    }

    /// `true` iff `u` and `v` are linked.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u.index()].binary_search(&v).is_ok()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Iterator over undirected edges, each reported once as `(u, v)`
    /// with `u < v`.
    pub fn edges(&self) -> Edges<'_> {
        Edges {
            topo: self,
            node: 0,
            pos: 0,
        }
    }

    /// The i-neighborhood `N^i_p` of Section 3: all nodes reachable from
    /// `p` in at most `i` hops, excluding `p` itself. Sorted by id.
    ///
    /// # Examples
    ///
    /// ```
    /// use mwn_graph::{NodeId, Topology};
    ///
    /// let line = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)])?;
    /// let n2 = line.k_neighborhood(NodeId::new(0), 2);
    /// assert_eq!(n2, vec![NodeId::new(1), NodeId::new(2)]);
    /// # Ok::<(), mwn_graph::GraphError>(())
    /// ```
    pub fn k_neighborhood(&self, p: NodeId, k: usize) -> Vec<NodeId> {
        let mut seen = vec![false; self.adj.len()];
        seen[p.index()] = true;
        let mut frontier = vec![p];
        let mut out = Vec::new();
        for _ in 0..k {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in self.neighbors(u) {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        out.push(v);
                        next.push(v);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        out.sort_unstable();
        out
    }

    /// The 2-neighborhood `N²_p`, used by the fusion rule of
    /// Section 4.3. Equivalent to `k_neighborhood(p, 2)`.
    pub fn two_hop_neighborhood(&self, p: NodeId) -> Vec<NodeId> {
        self.k_neighborhood(p, 2)
    }

    /// Counts the links of Definition 1: edges `(v, w)` with `v ∈ N_p`
    /// and `w ∈ {p} ∪ N_p`, each undirected edge counted once. This is
    /// `deg(p)` plus the number of edges among `p`'s neighbors.
    pub fn neighborhood_links(&self, p: NodeId) -> usize {
        let nbrs = self.neighbors(p);
        let mut count = nbrs.len();
        for (i, &u) in nbrs.iter().enumerate() {
            for &v in &nbrs[i + 1..] {
                if self.has_edge(u, v) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Position of node `p`, if the topology carries positions.
    pub fn position(&self, p: NodeId) -> Option<Point2> {
        self.positions.as_ref().map(|ps| ps[p.index()])
    }

    /// All node positions, if present.
    pub fn positions(&self) -> Option<&[Point2]> {
        self.positions.as_deref()
    }

    /// Mutable access to node positions (used by mobility models).
    /// Call [`Topology::rebuild_unit_disk_edges`] afterwards.
    pub fn positions_mut(&mut self) -> Option<&mut [Point2]> {
        self.positions.as_deref_mut()
    }

    /// The radio range, if the topology is a unit-disk graph.
    pub fn radius(&self) -> Option<f64> {
        self.radius
    }
}

/// Iterator over the undirected edges of a [`Topology`], created by
/// [`Topology::edges`]. Each edge appears once as `(u, v)` with `u < v`.
#[derive(Debug)]
pub struct Edges<'a> {
    topo: &'a Topology,
    node: u32,
    pos: usize,
}

impl Iterator for Edges<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if (self.node as usize) >= self.topo.adj.len() {
                return None;
            }
            let u = NodeId::new(self.node);
            let list = &self.topo.adj[u.index()];
            while self.pos < list.len() {
                let v = list[self.pos];
                self.pos += 1;
                if u < v {
                    return Some((u, v));
                }
            }
            self.node += 1;
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Topology {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Topology::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn from_edges_builds_symmetric_adjacency() {
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2), (1, 0)]).unwrap();
        assert_eq!(topo.neighbors(NodeId::new(0)), &[NodeId::new(1)]);
        assert_eq!(
            topo.neighbors(NodeId::new(1)),
            &[NodeId::new(0), NodeId::new(2)]
        );
        assert_eq!(topo.edge_count(), 2);
    }

    #[test]
    fn self_loop_is_rejected() {
        assert_eq!(
            Topology::from_edges(2, &[(1, 1)]),
            Err(GraphError::SelfLoop {
                node: NodeId::new(1)
            })
        );
    }

    #[test]
    fn out_of_range_is_rejected() {
        assert!(matches!(
            Topology::from_edges(2, &[(0, 2)]),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn unit_disk_links_by_distance() {
        let positions = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.05, 0.0),
            Point2::new(0.2, 0.0),
        ];
        let topo = Topology::unit_disk(positions, 0.06).unwrap();
        assert!(topo.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!topo.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(!topo.has_edge(NodeId::new(1), NodeId::new(2)));
        assert_eq!(topo.radius(), Some(0.06));
    }

    #[test]
    fn unit_disk_rejects_bad_radius() {
        assert!(matches!(
            Topology::unit_disk(vec![], 0.0),
            Err(GraphError::InvalidRadius { .. })
        ));
        assert!(matches!(
            Topology::unit_disk(vec![], f64::NAN),
            Err(GraphError::InvalidRadius { .. })
        ));
    }

    #[test]
    fn remove_edge_is_symmetric() {
        let mut topo = Topology::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        topo.remove_edge(NodeId::new(1), NodeId::new(0));
        assert!(!topo.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(topo.neighbors(NodeId::new(0)).is_empty());
        assert_eq!(topo.edge_count(), 1);
        // removing a missing edge is a no-op
        topo.remove_edge(NodeId::new(0), NodeId::new(2));
        assert_eq!(topo.edge_count(), 1);
    }

    #[test]
    fn k_neighborhood_grows_monotonically() {
        let topo = line(6);
        let p = NodeId::new(0);
        let mut prev = 0;
        for k in 1..=6 {
            let nk = topo.k_neighborhood(p, k).len();
            assert!(nk >= prev);
            prev = nk;
        }
        assert_eq!(topo.k_neighborhood(p, 5).len(), 5);
        assert_eq!(topo.k_neighborhood(p, 50).len(), 5);
    }

    #[test]
    fn neighborhood_links_counts_definition_one() {
        // Triangle plus a pendant: for the pendant node p, N_p = {0},
        // links = just the edge (p, 0).
        let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (0, 2), (0, 3)]).unwrap();
        assert_eq!(topo.neighborhood_links(NodeId::new(3)), 1);
        // For node 0: N_0 = {1, 2, 3}; edges to them = 3, plus (1,2) = 4.
        assert_eq!(topo.neighborhood_links(NodeId::new(0)), 4);
        // For node 1: N_1 = {0, 2}; edges to them = 2, plus (0,2) = 3.
        assert_eq!(topo.neighborhood_links(NodeId::new(1)), 3);
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let edges: Vec<_> = topo.edges().collect();
        assert_eq!(edges.len(), 4);
        for (u, v) in edges {
            assert!(u < v);
            assert!(topo.has_edge(u, v));
        }
    }

    #[test]
    fn rebuild_after_moving_positions() {
        let positions = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)];
        let mut topo = Topology::unit_disk(positions, 0.1).unwrap();
        assert_eq!(topo.edge_count(), 0);
        topo.positions_mut().unwrap()[1] = Point2::new(0.05, 0.0);
        topo.rebuild_unit_disk_edges();
        assert_eq!(topo.edge_count(), 1);
    }

    #[test]
    fn empty_topology_properties() {
        let topo = Topology::empty(0);
        assert!(topo.is_empty());
        assert_eq!(topo.max_degree(), 0);
        assert_eq!(topo.mean_degree(), 0.0);
        assert_eq!(topo.edges().count(), 0);
    }

    #[test]
    fn mean_and_max_degree() {
        let topo = Topology::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(topo.max_degree(), 3);
        assert!((topo.mean_degree() - 1.5).abs() < 1e-12);
    }
}
