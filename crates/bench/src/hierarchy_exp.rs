//! **Hierarchy extension experiment** (paper future work:
//! "hierarchical self-stabilization algorithms"): build the recursive
//! density-cluster hierarchy over a Poisson field and report each
//! level's shape.

use mwn_cluster::{build_hierarchy, Hierarchy, OracleConfig};
use mwn_graph::builders;
use mwn_metrics::{RunningStats, Table};
use mwn_sim::Sweep;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::ExperimentScale;

/// Mean per-level shape of the hierarchy.
#[derive(Clone, Debug, PartialEq)]
pub struct HierarchyResult {
    /// Mean number of participating nodes per level.
    pub nodes_per_level: Vec<f64>,
    /// Mean number of clusters per level.
    pub clusters_per_level: Vec<f64>,
    /// Mean hierarchy depth.
    pub mean_depth: f64,
}

/// Builds hierarchies over `scale.runs` deployments.
pub fn run(scale: ExperimentScale) -> HierarchyResult {
    let results: Vec<Hierarchy> = Sweep::over(scale.runs, scale.seed ^ 0x61AC).map(|seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = builders::poisson(scale.lambda, 0.07, &mut rng);
        build_hierarchy(&topo, &OracleConfig::default(), 10)
    });
    summarize(&results)
}

fn summarize(results: &[Hierarchy]) -> HierarchyResult {
    let max_depth = results.iter().map(Hierarchy::depth).max().unwrap_or(0);
    let mut nodes_per_level = Vec::new();
    let mut clusters_per_level = Vec::new();
    for level in 0..max_depth {
        let mut nodes = RunningStats::new();
        let mut clusters = RunningStats::new();
        for h in results {
            if let Some(l) = h.levels().get(level) {
                nodes.push(l.members.len() as f64);
                clusters.push(l.clustering.head_count() as f64);
            }
        }
        nodes_per_level.push(nodes.mean());
        clusters_per_level.push(clusters.mean());
    }
    let mean_depth = results
        .iter()
        .map(|h| h.depth() as f64)
        .collect::<RunningStats>()
        .mean();
    HierarchyResult {
        nodes_per_level,
        clusters_per_level,
        mean_depth,
    }
}

/// Formats the per-level table.
pub fn render(result: &HierarchyResult) -> Table {
    let mut table = Table::new(format!(
        "Hierarchical clustering (mean depth {:.1} levels)",
        result.mean_depth
    ));
    let mut headers = vec!["level".to_string()];
    headers.extend((0..result.nodes_per_level.len()).map(|l| l.to_string()));
    table.set_headers(headers);
    table.add_numeric_row("nodes", &result.nodes_per_level, 1);
    table.add_numeric_row("clusters", &result.clusters_per_level, 1);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_shrink_monotonically() {
        let result = run(ExperimentScale {
            runs: 4,
            lambda: 300.0,
            ..ExperimentScale::quick()
        });
        assert!(result.mean_depth >= 2.0, "depth {}", result.mean_depth);
        for w in result.nodes_per_level.windows(2) {
            assert!(
                w[1] < w[0],
                "levels must shrink: {:?}",
                result.nodes_per_level
            );
        }
        // Every level has at least one cluster.
        assert!(result.clusters_per_level.iter().all(|&c| c >= 1.0));
    }

    #[test]
    fn render_shows_levels() {
        let result = HierarchyResult {
            nodes_per_level: vec![300.0, 40.0, 8.0],
            clusters_per_level: vec![40.0, 8.0, 2.0],
            mean_depth: 3.0,
        };
        let s = render(&result).to_string();
        assert!(s.contains("depth 3.0"));
        assert!(s.contains("40.0"));
    }
}
