//! Measures the paper's Theorem 1 / Lemma 2 claims: stabilization
//! times that stay constant as the network grows, for any τ > 0.

use mwn_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    let result = mwn_bench::stabilization::run(scale);
    println!("{}", mwn_bench::stabilization::render_scaling(&result));
    println!();
    println!("{}", mwn_bench::stabilization::render_tau(&result));
}
