use std::cmp::Ordering;

use mwn_graph::NodeId;
use serde::{Deserialize, Serialize};

use crate::Density;

/// Which variant of the total order `≺` drives the election.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrderKind {
    /// The base order of Section 4.2:
    /// `p ≺ q ⇔ d_p < d_q ∨ (d_p = d_q ∧ Id_q < Id_p)` —
    /// higher density wins, then the *smaller* identifier wins.
    #[default]
    Basic,
    /// The stability refinement of Section 4.3: among equal densities a
    /// node that is currently a cluster-head beats one that is not
    /// ("cluster-heads remain cluster-heads as long as possible"), then
    /// the smaller identifier wins. The paper's formal definition
    /// leaves the both-are-heads case incomparable; we complete it with
    /// the identifier, keeping the order total (see DESIGN.md §4).
    Stable,
}

/// The comparable election record of one node: everything `≺` looks at.
///
/// `tiebreak` is the identifier used for equal-density decisions — the
/// node's **DAG identifier** when the constant-height DAG of Section
/// 4.1 is enabled, otherwise its globally unique id. DAG identifiers
/// are only guaranteed locally unique, so the globally unique `id` is
/// kept as the final fallback, making the order total on any set of
/// distinct nodes.
///
/// # Examples
///
/// ```
/// use mwn_cluster::{Density, Key, OrderKind};
/// use mwn_graph::NodeId;
///
/// let p = Key::new(Density::ratio(5, 4), false, 3, NodeId::new(9));
/// let q = Key::new(Density::ratio(3, 2), false, 7, NodeId::new(4));
/// // q has higher density: p ≺ q.
/// assert!(p.precedes(&q, OrderKind::Basic));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Key {
    /// The node's election metric value (density in the paper).
    pub density: Density,
    /// Whether the node currently claims to be a cluster-head
    /// (`H(p) = Id_p`); consulted only by [`OrderKind::Stable`].
    pub is_head: bool,
    /// DAG identifier (or the plain id when the DAG is disabled).
    pub tiebreak: u32,
    /// Globally unique identifier — final fallback, never equal for
    /// distinct nodes.
    pub id: NodeId,
}

impl Key {
    /// Assembles a key.
    pub fn new(density: Density, is_head: bool, tiebreak: u32, id: NodeId) -> Self {
        Key {
            density,
            is_head,
            tiebreak,
            id,
        }
    }

    /// Total comparison under `order`; `Ordering::Greater` means
    /// "stronger" (wins the election). Implements, in decreasing
    /// priority: density; incumbency (Stable only); smaller tiebreak id
    /// wins; smaller unique id wins.
    pub fn cmp_under(&self, other: &Key, order: OrderKind) -> Ordering {
        self.density
            .cmp(&other.density)
            .then_with(|| match order {
                OrderKind::Basic => Ordering::Equal,
                OrderKind::Stable => self.is_head.cmp(&other.is_head),
            })
            // Smaller identifiers are *stronger*: reverse both.
            .then_with(|| other.tiebreak.cmp(&self.tiebreak))
            .then_with(|| other.id.cmp(&self.id))
    }

    /// The paper's `p ≺ q` relation: `self` is strictly weaker.
    pub fn precedes(&self, other: &Key, order: OrderKind) -> bool {
        self.cmp_under(other, order) == Ordering::Less
    }
}

/// Returns the strongest key under `order`, or `None` for an empty
/// iterator — the paper's `max_≺` operator.
pub fn max_key<I>(keys: I, order: OrderKind) -> Option<Key>
where
    I: IntoIterator<Item = Key>,
{
    keys.into_iter().max_by(|a, b| a.cmp_under(b, order))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(links: u32, deg: u32, is_head: bool, tb: u32, id: u32) -> Key {
        Key::new(Density::ratio(links, deg), is_head, tb, NodeId::new(id))
    }

    #[test]
    fn density_dominates() {
        let weak = key(1, 1, true, 0, 0);
        let strong = key(3, 2, false, 99, 99);
        assert!(weak.precedes(&strong, OrderKind::Basic));
        assert!(weak.precedes(&strong, OrderKind::Stable));
    }

    #[test]
    fn smaller_id_wins_ties_in_basic() {
        // Paper: "If there are some joint winners, the smallest
        // identity is used to decide between them."
        let p = key(3, 2, false, 9, 9);
        let q = key(3, 2, false, 2, 2);
        assert!(p.precedes(&q, OrderKind::Basic));
        assert!(!q.precedes(&p, OrderKind::Basic));
    }

    #[test]
    fn incumbent_head_wins_ties_in_stable_order() {
        // Equal densities; q is a head with a *larger* id. Under Basic
        // the smaller id p wins; under Stable the incumbent q wins.
        let p = key(3, 2, false, 2, 2);
        let q = key(3, 2, true, 9, 9);
        assert!(q.precedes(&p, OrderKind::Basic));
        assert!(p.precedes(&q, OrderKind::Stable));
    }

    #[test]
    fn both_heads_fall_back_to_id() {
        let p = key(3, 2, true, 9, 9);
        let q = key(3, 2, true, 2, 2);
        assert!(p.precedes(&q, OrderKind::Stable));
    }

    #[test]
    fn unique_id_breaks_dag_id_collisions() {
        // Two-hop nodes may share a DAG id; the unique id must decide.
        let p = key(3, 2, false, 5, 9);
        let q = key(3, 2, false, 5, 2);
        assert!(p.precedes(&q, OrderKind::Basic));
    }

    #[test]
    fn order_is_total_and_antisymmetric() {
        let keys = [
            key(1, 1, false, 3, 0),
            key(1, 1, false, 3, 1),
            key(2, 1, true, 0, 2),
            key(4, 2, false, 1, 3),
            key(1, 2, true, 3, 4),
            key(3, 2, true, 2, 5),
        ];
        for order in [OrderKind::Basic, OrderKind::Stable] {
            for a in &keys {
                assert!(!a.precedes(a, order), "irreflexive");
                for b in &keys {
                    if a.id != b.id {
                        assert!(
                            a.precedes(b, order) ^ b.precedes(a, order),
                            "exactly one of a≺b, b≺a for distinct nodes"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn order_is_transitive_on_sample() {
        let keys = [
            key(1, 1, false, 3, 0),
            key(2, 1, true, 0, 2),
            key(4, 2, false, 1, 3),
            key(1, 2, true, 3, 4),
            key(3, 2, true, 2, 5),
            key(3, 2, false, 2, 6),
        ];
        for order in [OrderKind::Basic, OrderKind::Stable] {
            for a in &keys {
                for b in &keys {
                    for c in &keys {
                        if a.precedes(b, order) && b.precedes(c, order) {
                            assert!(a.precedes(c, order), "transitivity");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn max_key_picks_the_strongest() {
        let ks = vec![
            key(1, 1, false, 5, 5),
            key(3, 2, false, 9, 9),
            key(1, 1, false, 2, 2),
        ];
        let m = max_key(ks, OrderKind::Basic).unwrap();
        assert_eq!(m.id, NodeId::new(9));
        assert_eq!(max_key(Vec::new(), OrderKind::Basic), None);
    }
}
