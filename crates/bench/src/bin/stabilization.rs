//! Measures the paper's Theorem 1 / Lemma 2 claims: stabilization
//! times that stay constant as the network grows, for any τ > 0.
//!
//! `--sweep-timing [N]` instead compares the parallel `Sweep` runner
//! against a serial loop on the cold-start experiment over N seeds
//! (default 16) and reports the wall-clock speedup.

use mwn_bench::ExperimentScale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--sweep-timing") {
        let seeds = args
            .get(pos + 1)
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(16);
        let (serial, parallel) = mwn_bench::stabilization::sweep_speedup(seeds, 20050610);
        println!(
            "stabilization experiment over {seeds} seeds (λ = 1000):\n\
             serial loop     {serial:>10.2?}\n\
             parallel Sweep  {parallel:>10.2?}\n\
             speedup         {:.2}×",
            serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9)
        );
        return;
    }
    let scale = ExperimentScale::from_args();
    let result = mwn_bench::stabilization::run(scale);
    println!("{}", mwn_bench::stabilization::render_scaling(&result));
    println!();
    println!("{}", mwn_bench::stabilization::render_tau(&result));
}
