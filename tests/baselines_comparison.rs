//! Baseline comparisons: the structural claims the paper makes when
//! positioning density clustering against lowest-id, highest-degree
//! and max-min d-cluster (Sections 2 and 3).

use mwn_baselines::{highest_degree_config, lowest_id_config, max_min_clustering};
use rand::SeedableRng;
use selfstab::prelude::*;

fn field(seed: u64) -> Topology {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    builders::poisson(300.0, 0.1, &mut rng)
}

#[test]
fn all_baselines_produce_valid_clusterings() {
    let topo = field(1);
    let clusterings = vec![
        ("density", oracle(&topo, &OracleConfig::default())),
        ("lowest-id", oracle(&topo, &lowest_id_config())),
        ("degree", oracle(&topo, &highest_degree_config())),
        ("max-min-2", max_min_clustering(&topo, 2)),
    ];
    for (name, c) in clusterings {
        assert_eq!(c.len(), topo.len(), "{name}");
        assert!(c.head_count() >= 1, "{name}");
        for p in topo.nodes() {
            assert!(c.is_head(c.head(p)), "{name}: dangling head for {p}");
            assert!(
                c.depth_in_hops(&topo, p).is_some(),
                "{name}: broken chain at {p}"
            );
        }
    }
}

#[test]
fn one_hop_metrics_never_elect_adjacent_heads() {
    let topo = field(2);
    for (name, cfg) in [
        ("density", OracleConfig::default()),
        ("lowest-id", lowest_id_config()),
        ("degree", highest_degree_config()),
    ] {
        let c = oracle(&topo, &cfg);
        for h in c.heads() {
            for &q in topo.neighbors(h) {
                assert!(!c.is_head(q), "{name}: adjacent heads {h}, {q}");
            }
        }
    }
}

#[test]
fn density_is_no_worse_than_degree_under_node_arrival() {
    // The density argument (Section 3): one node arriving changes the
    // degree of all its neighbors but barely moves their densities, so
    // fewer heads flip. Simulate arrivals by toggling nodes' links.
    // One field is noisy, so the claim is checked as an average over a
    // seed sweep of deployments.
    let per_seed = Sweep::over(6, 33).map(|seed| {
        let topo = field(seed);
        let density_before = oracle(&topo, &OracleConfig::default());
        let degree_before = oracle(&topo, &highest_degree_config());
        let mut flips_density = 0usize;
        let mut flips_degree = 0usize;
        for victim in topo.nodes().take(25) {
            let mut t = topo.clone();
            let nbrs: Vec<NodeId> = t.neighbors(victim).to_vec();
            for q in nbrs {
                t.remove_edge(victim, q);
            }
            let density_after = oracle(&t, &OracleConfig::default());
            let degree_after = oracle(&t, &highest_degree_config());
            flips_density += topo
                .nodes()
                .filter(|&p| p != victim && density_before.is_head(p) != density_after.is_head(p))
                .count();
            flips_degree += topo
                .nodes()
                .filter(|&p| p != victim && degree_before.is_head(p) != degree_after.is_head(p))
                .count();
        }
        (flips_density, flips_degree)
    });
    let (flips_density, flips_degree) = per_seed
        .into_iter()
        .fold((0, 0), |(d, g), (fd, fg)| (d + fd, g + fg));
    assert!(
        flips_density <= flips_degree + 10,
        "density flipped {flips_density} heads vs degree {flips_degree} over the sweep"
    );
}

#[test]
fn max_min_with_larger_d_gives_fewer_clusters_than_density() {
    let topo = field(4);
    let density = oracle(&topo, &OracleConfig::default()).head_count();
    let mm3 = max_min_clustering(&topo, 3).head_count();
    // d = 3 covers 3-hop balls; density clusters grow organically but
    // heads are only guaranteed non-adjacent — max-min should not
    // produce *more* clusters at this d.
    assert!(
        mm3 <= density * 2,
        "max-min d=3 gave {mm3} clusters vs density {density}"
    );
}

#[test]
fn unit_metric_distributed_run_equals_lowest_id_oracle() {
    let topo = field(5);
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig {
        metric: MetricKind::Unit,
        ..ClusterConfig::default()
    }))
    .topology(topo)
    .seed(5)
    .build()
    .expect("valid scenario");
    net.run_to(&StopWhen::stable_for(3).within(500))
        .expect_stable("stabilizes");
    let got = extract_clustering(net.states()).unwrap();
    assert_eq!(got, oracle(net.topology(), &lowest_id_config()));
}

#[test]
fn density_beats_lowest_id_on_the_adversarial_grid() {
    // On the row-major grid, lowest-id *and* density-without-DAG both
    // collapse; density-with-DAG does not. This is the paper's whole
    // point — check the three-way comparison explicitly.
    let topo = builders::grid(16, 16, 0.05 * 31.0 / 15.0);
    let lowest = oracle(&topo, &lowest_id_config());
    assert_eq!(lowest.head_count(), 1, "lowest-id collapses");
    let no_dag = oracle(&topo, &OracleConfig::default());
    assert_eq!(no_dag.head_count(), 1, "density without DAG collapses");
    let gamma = NameSpace::delta_squared(topo.max_degree());
    let config = ClusterConfig {
        dag: Some(DagConfig {
            gamma,
            variant: DagVariant::SmallestIdRedraws,
        }),
        ..ClusterConfig::default()
    };
    let mut net = Scenario::new(DensityCluster::new(config))
        .topology(topo)
        .seed(6)
        .validate(move |t| config.validate_for(t))
        .build()
        .expect("valid scenario");
    net.run_to(&StopWhen::stable_for(4).within(1000))
        .expect_stable("stabilizes");
    let with_dag = extract_clustering(net.states()).unwrap();
    assert!(
        with_dag.head_count() > 5,
        "DAG renaming must break the collapse, got {}",
        with_dag.head_count()
    );
}
