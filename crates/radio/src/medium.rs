use mwn_graph::{NodeId, Topology};
use rand::rngs::StdRng;

use crate::{ContentionStreams, OccupancyView};

/// The outcome of one broadcast round over a medium.
///
/// `heard[r]` lists the senders whose frame node `r` received this
/// round, in delivery order. `attempted` counts every (sender,
/// 1-neighbor) frame copy that could have been received; `delivered`
/// counts those that were. Their ratio is the empirical τ of the round.
///
/// `touched` lists the receivers whose `heard` list is non-empty, so a
/// driver can walk the round's recipients in O(deliveries) instead of
/// scanning all n nodes — the activity-driven engine's hot path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Delivery {
    /// Per-receiver list of heard senders.
    pub heard: Vec<Vec<NodeId>>,
    /// Receivers with at least one [`Delivery::record`] call this
    /// round, in first-hear order, duplicate-free. (A receiver may end
    /// up with an empty `heard` list if a wrapper like
    /// [`crate::Thinned`] later dropped its only copy; consumers just
    /// see an empty list.)
    pub touched: Vec<NodeId>,
    /// Number of (sender, neighbor) frame copies that were in range.
    pub attempted: usize,
    /// Number of frame copies actually received.
    pub delivered: usize,
    /// O(1) membership mirror of `touched`.
    seen: Vec<bool>,
}

impl Delivery {
    /// Creates an empty delivery for `n` receivers.
    pub fn empty(n: usize) -> Self {
        Delivery {
            heard: vec![Vec::new(); n],
            touched: Vec::new(),
            attempted: 0,
            delivered: 0,
            seen: vec![false; n],
        }
    }

    /// Empties the delivery for `n` receivers while keeping its
    /// buffers: per-step reuse allocates nothing in steady state (only
    /// the receivers actually touched last round are cleared).
    pub fn reset(&mut self, n: usize) {
        if self.heard.len() == n {
            for &r in &self.touched {
                self.heard[r.index()].clear();
                self.seen[r.index()] = false;
            }
        } else {
            self.heard.iter_mut().for_each(Vec::clear);
            self.heard.resize_with(n, Vec::new);
            self.seen.clear();
            self.seen.resize(n, false);
        }
        self.touched.clear();
        self.attempted = 0;
        self.delivered = 0;
    }

    /// Records that `receiver` heard the frame of `sender`, maintaining
    /// the `touched` index and the `delivered` count. Media use this
    /// instead of pushing into `heard` directly.
    #[inline]
    pub fn record(&mut self, receiver: NodeId, sender: NodeId) {
        if !self.seen[receiver.index()] {
            self.seen[receiver.index()] = true;
            self.touched.push(receiver);
        }
        self.heard[receiver.index()].push(sender);
        self.delivered += 1;
    }

    /// Fraction of in-range frame copies that were delivered
    /// (1.0 when nothing was attempted).
    pub fn success_rate(&self) -> f64 {
        if self.attempted == 0 {
            1.0
        } else {
            self.delivered as f64 / self.attempted as f64
        }
    }
}

/// A broadcast wireless medium.
///
/// Given the topology and the set of nodes that broadcast during one
/// step, a medium decides which neighbor actually receives which frame.
/// Implementations must only ever deliver frames between 1-neighbors
/// (radio range is a hard constraint in the unit-disk model).
///
/// The RNG is the concrete [`StdRng`] used across the workspace so that
/// media can be used as trait objects and every run stays reproducible
/// from a seed.
///
/// The required method is the appending, allocation-free
/// [`Medium::deliver_into`]; [`Medium::deliver`] is a convenience
/// wrapper. Media whose frame fates are decided per (sender, receiver)
/// copy — with no cross-sender contention — should return `true` from
/// [`Medium::independent_fates`], which lets the activity-driven round
/// driver skip quiescent senders without perturbing anyone else's
/// frames.
pub trait Medium {
    /// Delivers one round of broadcasts from `senders`, **appending**
    /// into `out` (the caller resets and sizes it). Appending semantics
    /// let a driver accumulate several partial rounds — in particular
    /// one [`Medium::deliver_from`] call per active sender — into one
    /// `Delivery`.
    fn deliver_into(
        &mut self,
        topo: &Topology,
        senders: &[NodeId],
        rng: &mut StdRng,
        out: &mut Delivery,
    );

    /// Delivers one round of broadcasts from `senders` into a fresh
    /// [`Delivery`].
    fn deliver(&mut self, topo: &Topology, senders: &[NodeId], rng: &mut StdRng) -> Delivery {
        let mut out = Delivery::empty(topo.len());
        self.deliver_into(topo, senders, rng, &mut out);
        out
    }

    /// Delivers the frames of a single sender, appending into `out`.
    ///
    /// Only meaningful when [`Medium::independent_fates`] holds: the
    /// activity-driven driver calls this once per scheduled sender with
    /// a dedicated per-(step, sender) RNG stream, so a frame's fate
    /// depends only on `(seed, step, sender)` — never on which *other*
    /// nodes happened to transmit.
    fn deliver_from(
        &mut self,
        topo: &Topology,
        sender: NodeId,
        rng: &mut StdRng,
        out: &mut Delivery,
    ) {
        self.deliver_into(topo, &[sender], rng, out);
    }

    /// `true` when every frame copy's fate is independent of the other
    /// senders in the round (no contention coupling): the perfect and
    /// Bernoulli media of the paper's hypothesis qualify, CSMA-style
    /// collision media do not. Conservative default: `false`.
    ///
    /// Both clocks honor this flag. The synchronous round driver uses
    /// it to gate quiescent senders without perturbing anyone else's
    /// frames; the continuous-time event driver additionally selects
    /// its channel by it — independent-fates media are evaluated once
    /// per transmission on a derived per-(slot, sender) stream
    /// ([`Medium::deliver_from`]), while contention-coupled media fall
    /// back to the driver's built-in overlap-collision model.
    fn independent_fates(&self) -> bool {
        false
    }

    /// `true` when [`Medium::proxy_fates`] is implemented: per-sender
    /// frame fates can be evaluated through a **shared** reference, so
    /// a concurrent driver can hand one medium proxy to many worker
    /// threads at once. Implies [`Medium::independent_fates`].
    /// Conservative default: `false`.
    fn proxyable(&self) -> bool {
        false
    }

    /// Evaluates which neighbors hear one frame of `sender` through a
    /// shared reference, appending the lucky receivers to `heard` and
    /// returning the number of frame copies attempted (the sender's
    /// degree for a broadcast medium).
    ///
    /// This is the hook the actor driver's `MediumProxy` shares across
    /// worker threads. Implementations **must** draw from `rng` exactly
    /// as [`Medium::deliver_from`] would, so that replaying the same
    /// per-(slot, sender) stream reproduces the same drop decisions on
    /// every driver. Only meaningful when [`Medium::proxyable`] holds;
    /// the default delivers nothing and reports zero attempts.
    fn proxy_fates(
        &self,
        topo: &Topology,
        sender: NodeId,
        rng: &mut StdRng,
        heard: &mut Vec<NodeId>,
    ) -> usize {
        let _ = (topo, sender, rng, heard);
        debug_assert!(
            !self.proxyable(),
            "proxyable media must override proxy_fates"
        );
        0
    }

    /// `true` when the medium implements the **gated-contention**
    /// contract: [`Medium::deliver_occupied_into`] /
    /// [`Medium::deliver_from_occupied`] fold a silent-but-transmitting
    /// population ([`OccupancyView`]) into the collision draws
    /// statistically, so a driver may gate quiescent senders even
    /// though frame fates are contention-coupled. Mutually exclusive
    /// with [`Medium::independent_fates`] in the shipped media (a
    /// medium with independent fates needs no occupancy fold).
    /// Conservative default: `false` — such media (e.g.
    /// [`crate::Thinned`] wrappers) keep the eager fallback.
    ///
    /// The agreement claim under this contract is **distributional**
    /// (per-frame marginals match the eager reference; Wilson-band
    /// equivalence on stabilization time, delivery ratio and outputs),
    /// not byte-identical like the independent-fates gating.
    fn gated_contention(&self) -> bool {
        false
    }

    /// Delivers one round of broadcasts from the *active* `senders`
    /// while folding the occupied (silent-but-transmitting) population
    /// into the contention draws statistically, appending into `out`.
    ///
    /// Active–active interactions are simulated exactly; each occupied
    /// node contributes its marginal collision probability through
    /// draws on the derived [`ContentionStreams`] — per
    /// (tick, receiver, sender) for frame copies, per (tick, sender)
    /// for the sender's own slot and carrier-sense fate. No work is
    /// proportional to the number of silent nodes: a fully quiet round
    /// (`senders` empty) costs nothing.
    ///
    /// Only meaningful when [`Medium::gated_contention`] holds; the
    /// default delivers nothing.
    fn deliver_occupied_into(
        &mut self,
        topo: &Topology,
        senders: &[NodeId],
        occupancy: &dyn OccupancyView,
        streams: &ContentionStreams,
        out: &mut Delivery,
    ) {
        let _ = (topo, senders, occupancy, streams, out);
        debug_assert!(
            !self.gated_contention(),
            "gated-contention media must override deliver_occupied_into"
        );
    }

    /// Delivers the frames of a single active sender against the
    /// occupied population, appending into `out` — the event driver's
    /// per-transmission entry point (with [`crate::FullOccupancy`],
    /// since on the continuous clock every other radio beacons each
    /// period and therefore contends).
    fn deliver_from_occupied(
        &mut self,
        topo: &Topology,
        sender: NodeId,
        occupancy: &dyn OccupancyView,
        streams: &ContentionStreams,
        out: &mut Delivery,
    ) {
        self.deliver_occupied_into(topo, &[sender], occupancy, streams, out);
    }

    /// A short human-readable name used in experiment output.
    fn name(&self) -> &'static str;
}

/// Empirically measures the per-frame success probability τ of a
/// medium over `steps` rounds in which *every* node broadcasts — the
/// worst-case contention the paper's Δ(τ) step must absorb.
///
/// Returns 1.0 if the topology has no edges (no frame can fail).
///
/// # Examples
///
/// ```
/// use mwn_graph::builders;
/// use mwn_radio::{measure_tau, BernoulliLoss};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let topo = builders::complete(10);
/// let tau = measure_tau(&mut BernoulliLoss::new(0.7), &topo, 200, &mut rng);
/// assert!((tau - 0.7).abs() < 0.05);
/// ```
pub fn measure_tau<M: Medium + ?Sized>(
    medium: &mut M,
    topo: &Topology,
    steps: usize,
    rng: &mut StdRng,
) -> f64 {
    let senders: Vec<NodeId> = topo.nodes().collect();
    let mut attempted = 0usize;
    let mut delivered = 0usize;
    let mut d = Delivery::empty(topo.len());
    for _ in 0..steps {
        d.reset(topo.len());
        medium.deliver_into(topo, &senders, rng, &mut d);
        attempted += d.attempted;
        delivered += d.delivered;
    }
    if attempted == 0 {
        1.0
    } else {
        delivered as f64 / attempted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_delivery_success_rate_is_one() {
        let d = Delivery::empty(3);
        assert_eq!(d.success_rate(), 1.0);
        assert_eq!(d.heard.len(), 3);
    }

    #[test]
    fn success_rate_is_ratio() {
        let mut d = Delivery::empty(0);
        d.attempted = 4;
        d.delivered = 3;
        assert_eq!(d.success_rate(), 0.75);
    }

    #[test]
    fn record_maintains_touched_and_counts() {
        let mut d = Delivery::empty(3);
        d.attempted += 2;
        d.record(NodeId::new(1), NodeId::new(0));
        d.record(NodeId::new(1), NodeId::new(2));
        assert_eq!(d.touched, vec![NodeId::new(1)]);
        assert_eq!(d.delivered, 2);
        d.reset(3);
        assert!(d.heard.iter().all(Vec::is_empty));
        assert!(d.touched.is_empty());
        assert_eq!((d.attempted, d.delivered), (0, 0));
    }
}
