//! Ablations: election metrics (density vs degree vs lowest-id vs
//! max-min) and the Section 4.3 improvement rules, under mobility.

use mwn_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    let metrics = mwn_bench::ablation::run_metrics(scale);
    println!(
        "{}",
        mwn_bench::ablation::render(
            "Ablation (a): election metrics under pedestrian mobility",
            &metrics
        )
    );
    println!();
    let rules = mwn_bench::ablation::run_rules(scale);
    println!(
        "{}",
        mwn_bench::ablation::render("Ablation (b): Section 4.3 improvement rules", &rules)
    );
}
