//! The activity-driven engine at scale: steps/sec and messages/step
//! before vs. after stabilization, gated vs. eager, across network
//! sizes.
//!
//! The paper's protocol is *silent*: in the legitimate configuration
//! nothing changes. The classic engine still pays O(n + E) per step
//! forever; the dirty-set engine pays for exactly the churn. This
//! bench quantifies the difference — post-stabilization messages/step
//! must be 0 under gating, and steps/sec must grow by orders of
//! magnitude at 10k+ nodes.

use std::time::Instant;

use mwn_cluster::{ClusterConfig, DensityCluster};
use mwn_graph::builders;
use mwn_sim::{Scenario, StopWhen};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One network size's measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalingPoint {
    /// The medium the row ran under (`Medium::name`).
    pub medium: &'static str,
    /// Poisson intensity requested.
    pub intensity: usize,
    /// Actual node count of the deployment.
    pub nodes: usize,
    /// Undirected link count.
    pub edges: usize,
    /// Steps until the election output stabilized (gated run).
    pub stabilization_steps: u64,
    /// Driver steps per wall-clock second during the cold-start
    /// converging phase (every node active, every beacon flying) — the
    /// throughput the kernel layer optimizes.
    pub converging_steps_per_sec: f64,
    /// Mean broadcasts per step while converging (gated run).
    pub messages_per_step_converging: f64,
    /// Broadcasts per step after stabilization, gated — the silence
    /// claim: must be 0.
    pub messages_per_step_stable_gated: f64,
    /// Broadcasts per step after stabilization, eager (always = n).
    pub messages_per_step_stable_eager: f64,
    /// Post-stabilization steps/sec with dirty-set scheduling.
    pub stable_steps_per_sec_gated: f64,
    /// Post-stabilization steps/sec re-running every guard.
    pub stable_steps_per_sec_eager: f64,
}

impl ScalingPoint {
    /// Post-stabilization speedup of gated over eager stepping.
    pub fn speedup(&self) -> f64 {
        if self.stable_steps_per_sec_eager == 0.0 {
            1.0
        } else {
            self.stable_steps_per_sec_gated / self.stable_steps_per_sec_eager
        }
    }
}

fn radius_for(n: usize, degree_target: f64) -> f64 {
    (degree_target / (n as f64 * std::f64::consts::PI)).sqrt()
}

/// Times `steps` driver steps and returns (steps/sec, messages/step).
fn measure<M: mwn_radio::Medium>(
    net: &mut mwn_sim::Network<DensityCluster, M>,
    steps: u64,
) -> (f64, f64) {
    let messages_before = net.messages_total();
    let start = Instant::now();
    net.run(steps);
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let messages = (net.messages_total() - messages_before) as f64;
    (steps as f64 / elapsed, messages / steps as f64)
}

/// Runs the scaling measurement at one Poisson intensity on the
/// default [`mwn_radio::PerfectMedium`].
///
/// # Panics
///
/// Panics if the protocol fails to stabilize within the step budget
/// (which would falsify Lemma 2).
pub fn run_point(intensity: usize, seed: u64, post_steps: u64) -> ScalingPoint {
    run_point_on(mwn_radio::PerfectMedium, intensity, seed, post_steps)
}

/// Runs the scaling measurement at one Poisson intensity on an
/// arbitrary gating medium — the CSMA rows use this with
/// [`mwn_radio::SlottedCsma`], where silence gates through statistical
/// slot occupancy instead of independent fates.
///
/// # Panics
///
/// Panics if the protocol fails to stabilize within the step budget,
/// or if the medium does not gate (no silence to measure).
pub fn run_point_on<M: mwn_radio::Medium>(
    medium: M,
    intensity: usize,
    seed: u64,
    post_steps: u64,
) -> ScalingPoint {
    let medium_name = medium.name();
    let radius = radius_for(intensity, 8.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = builders::poisson(intensity as f64, radius, &mut rng);
    let nodes = topo.len();
    let edges = topo.edge_count();

    // Gated engine: converge, then measure the silent regime.
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default().event_driven()))
        .medium(medium)
        .topology(topo)
        .seed(seed)
        .build()
        .expect("valid scenario");
    assert!(net.is_gated(), "medium `{medium_name}` must gate");
    let converge_start = Instant::now();
    let report = net.run_to(&StopWhen::stable_for(2).within(10_000));
    let converge_elapsed = converge_start.elapsed().as_secs_f64().max(1e-9);
    let stabilization_steps = report.expect_stable("the election stabilizes (Lemma 2)");
    let converging_steps_per_sec = net.now() as f64 / converge_elapsed;
    let messages_per_step_converging = net.messages_total() as f64 / net.now().max(1) as f64;
    // Drain the last pending beacons (a quiet output does not instantly
    // imply every neighbor caught up — under lossy contention media a
    // straggler frame can take a few extra rounds), then measure pure
    // silence.
    for _ in 0..64 {
        if net.last_activity().senders == 0 {
            break;
        }
        net.step();
    }
    let (gated_sps, gated_mps) = measure(&mut net, post_steps);

    // Same network pinned eager: every node re-beacons and re-runs its
    // guards although nothing can change. An eager step costs O(n + E),
    // so the sample size shrinks with n to keep million-node runs
    // finishing in seconds (the rate estimate stays stable: every eager
    // step does identical work).
    net.set_eager(true);
    let eager_steps = (2_000_000 / nodes.max(1)).clamp(3, 200) as u64;
    let (eager_sps, eager_mps) = measure(&mut net, post_steps.min(eager_steps));

    ScalingPoint {
        medium: medium_name,
        intensity,
        nodes,
        edges,
        stabilization_steps,
        converging_steps_per_sec,
        messages_per_step_converging,
        messages_per_step_stable_gated: gated_mps,
        messages_per_step_stable_eager: eager_mps,
        stable_steps_per_sec_gated: gated_sps,
        stable_steps_per_sec_eager: eager_sps,
    }
}

/// Runs the full size sweep on the perfect medium.
pub fn run(sizes: &[usize], seed: u64, post_steps: u64) -> Vec<ScalingPoint> {
    sizes
        .iter()
        .map(|&n| run_point(n, seed, post_steps))
        .collect()
}

/// Runs the size sweep under gated-contention CSMA (8 mini-slots,
/// carrier sense) — the rows proving the silence claim now covers
/// contention media.
pub fn run_csma(sizes: &[usize], seed: u64, post_steps: u64) -> Vec<ScalingPoint> {
    sizes
        .iter()
        .map(|&n| run_point_on(mwn_radio::SlottedCsma::new(8), n, seed, post_steps))
        .collect()
}

/// Renders the results as a JSON array (hand-rolled: the workspace's
/// offline `serde` shim has no serializer), the `BENCH_scaling.json`
/// payload CI archives.
pub fn to_json(points: &[ScalingPoint]) -> String {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "  {{\"medium\": \"{}\", ",
                "\"intensity\": {}, \"nodes\": {}, \"edges\": {}, ",
                "\"stabilization_steps\": {}, ",
                "\"converging_steps_per_sec\": {:.1}, ",
                "\"messages_per_step_converging\": {:.2}, ",
                "\"messages_per_step_stable_gated\": {:.2}, ",
                "\"messages_per_step_stable_eager\": {:.2}, ",
                "\"stable_steps_per_sec_gated\": {:.1}, ",
                "\"stable_steps_per_sec_eager\": {:.1}, ",
                "\"post_stabilization_speedup\": {:.1}}}{}"
            ),
            p.medium,
            p.intensity,
            p.nodes,
            p.edges,
            p.stabilization_steps,
            p.converging_steps_per_sec,
            p.messages_per_step_converging,
            p.messages_per_step_stable_gated,
            p.messages_per_step_stable_eager,
            p.stable_steps_per_sec_gated,
            p.stable_steps_per_sec_eager,
            p.speedup(),
            if i + 1 == points.len() { "" } else { "," }
        ));
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Renders a human-readable table.
pub fn render(points: &[ScalingPoint]) -> mwn_metrics::Table {
    let mut table =
        mwn_metrics::Table::new("Activity-driven engine: post-stabilization cost (gated vs eager)");
    let mut headers = vec!["n".to_string()];
    headers.extend(points.iter().map(|p| p.nodes.to_string()));
    table.set_headers(headers);
    table.add_row(
        "medium",
        points.iter().map(|p| p.medium.to_string()).collect(),
    );
    table.add_numeric_row(
        "stabilization steps",
        &points
            .iter()
            .map(|p| p.stabilization_steps as f64)
            .collect::<Vec<_>>(),
        0,
    );
    table.add_numeric_row(
        "steps/s converging",
        &points
            .iter()
            .map(|p| p.converging_steps_per_sec)
            .collect::<Vec<_>>(),
        0,
    );
    table.add_numeric_row(
        "msgs/step converging",
        &points
            .iter()
            .map(|p| p.messages_per_step_converging)
            .collect::<Vec<_>>(),
        1,
    );
    table.add_numeric_row(
        "msgs/step stable (gated)",
        &points
            .iter()
            .map(|p| p.messages_per_step_stable_gated)
            .collect::<Vec<_>>(),
        1,
    );
    table.add_numeric_row(
        "msgs/step stable (eager)",
        &points
            .iter()
            .map(|p| p.messages_per_step_stable_eager)
            .collect::<Vec<_>>(),
        1,
    );
    table.add_numeric_row(
        "steps/s stable (gated)",
        &points
            .iter()
            .map(|p| p.stable_steps_per_sec_gated)
            .collect::<Vec<_>>(),
        0,
    );
    table.add_numeric_row(
        "steps/s stable (eager)",
        &points
            .iter()
            .map(|p| p.stable_steps_per_sec_eager)
            .collect::<Vec<_>>(),
        0,
    );
    table.add_numeric_row(
        "speedup",
        &points.iter().map(ScalingPoint::speedup).collect::<Vec<_>>(),
        1,
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_point_is_silent_after_stabilization() {
        let p = run_point(300, 7, 50);
        assert!(p.nodes > 200);
        assert_eq!(
            p.messages_per_step_stable_gated, 0.0,
            "a stabilized silent protocol sends nothing"
        );
        assert!(
            (p.messages_per_step_stable_eager - p.nodes as f64).abs() < 1e-9,
            "eager re-broadcasts everyone every step"
        );
        assert!(p.messages_per_step_converging > 0.0);
        assert!(
            p.converging_steps_per_sec > 0.0,
            "converging throughput must be measured"
        );
        assert!(p.stabilization_steps < 200);
        assert!(p.speedup() > 1.0, "skipping all work must be faster");
    }

    #[test]
    fn csma_point_is_silent_after_stabilization() {
        // The flagship claim of the gated-contention contract: silence
        // is free under CSMA too, not only for independent-fates media.
        let p = run_point_on(mwn_radio::SlottedCsma::new(8), 250, 11, 40);
        assert_eq!(p.medium, "slotted-csma");
        assert_eq!(
            p.messages_per_step_stable_gated, 0.0,
            "a stabilized gated-CSMA network sends nothing"
        );
        assert!(p.messages_per_step_converging > 0.0);
        assert!(p.speedup() > 1.0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let p = run_point(150, 3, 20);
        let json = to_json(&[p]);
        assert!(json.starts_with("[\n") && json.ends_with("]\n"));
        assert!(json.contains("\"medium\": \"perfect\""));
        assert!(json.contains("\"messages_per_step_stable_gated\": 0.00"));
        assert!(!render(&[run_point(150, 3, 5)]).to_string().is_empty());
    }
}
