//! Regenerates the paper's Figures 2 and 3 as fig2.svg / fig3.svg
//! (plus an ASCII preview on stdout).

use mwn_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_args();
    let result = mwn_bench::figures::run(scale);
    std::fs::write("fig2.svg", mwn_bench::figures::svg(&result, false)).expect("write fig2.svg");
    std::fs::write("fig3.svg", mwn_bench::figures::svg(&result, true)).expect("write fig3.svg");
    println!(
        "Figure 2 (no DAG): {} cluster(s) — wrote fig2.svg",
        result.fig2.head_count()
    );
    println!(
        "Figure 3 (with DAG): {} cluster(s) — wrote fig3.svg",
        result.fig3.head_count()
    );
    println!("\nFigure 3 preview (heads upper-case):");
    print!("{}", mwn_bench::figures::ascii(&result, true));
}
