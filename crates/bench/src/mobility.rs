//! **Section 5 mobility study**: the percentage of cluster-heads that
//! remain cluster-heads across consecutive 2-second windows while
//! nodes move randomly for 15 minutes, with and without the Section
//! 4.3 stability improvements (incumbency tie-break + head fusion).
//!
//! Paper's numbers: pedestrian speeds (0–1.6 m/s) ≈ 82% with the
//! improvements vs 78% without; vehicular (0–10 m/s) ≈ 31% vs 25%.

use mwn_cluster::{oracle, Clustering, HeadRule, OracleConfig, OrderKind};
use mwn_graph::Topology;
use mwn_metrics::{RunningStats, Table};
use mwn_mobility::{meters_per_second, MobileScenario, RandomWaypoint};
use mwn_sim::Sweep;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::ExperimentScale;

/// A clustering policy evaluated under mobility: maps the current
/// topology (and the previous clustering, for incumbency) to the new
/// clustering.
pub type Clusterer = dyn Fn(&Topology, Option<&Clustering>) -> Clustering + Sync;

/// The paper's improved variant: incumbency-aware order plus the
/// 2-hop fusion rule.
pub fn improved_clusterer() -> Box<Clusterer> {
    Box::new(|topo, prev| {
        let prev_heads = prev.map(|c| topo.nodes().map(|p| c.is_head(p)).collect());
        oracle(
            topo,
            &OracleConfig {
                order: OrderKind::Stable,
                rule: HeadRule::Fusion,
                prev_heads,
                ..OracleConfig::default()
            },
        )
    })
}

/// The base density clustering without the improvements.
pub fn basic_clusterer() -> Box<Clusterer> {
    Box::new(|topo, _| oracle(topo, &OracleConfig::default()))
}

/// Head persistence and cluster-count statistics for one policy under
/// random-waypoint mobility.
///
/// `vmax_mps` is the top speed in meters per second (the paper's 1.6
/// for pedestrians, 10 for cars); windows are `tick_s` seconds (paper:
/// 2 s); each of `seeds` runs lasts `duration_s` seconds.
pub fn persistence_under_mobility(
    scale: &ExperimentScale,
    vmax_mps: f64,
    duration_s: f64,
    tick_s: f64,
    seeds: usize,
    clusterer: &Clusterer,
) -> (f64, f64) {
    let results = Sweep::over(seeds, scale.seed ^ 0x3089).map(|seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_hint = (scale.lambda / 2.0).max(50.0);
        let topo = mwn_graph::builders::poisson(n_hint, 0.1, &mut rng);
        let n = topo.len();
        let model = RandomWaypoint::new(n, 0.0..=meters_per_second(vmax_mps), 0.0);
        let mut scenario = MobileScenario::new(topo, model, seed);
        let mut prev = clusterer(scenario.topology(), None);
        let mut persistence = RunningStats::new();
        let mut clusters = RunningStats::new();
        let ticks = (duration_s / tick_s).round() as usize;
        for _ in 0..ticks {
            scenario.advance(tick_s);
            let next = clusterer(scenario.topology(), Some(&prev));
            persistence.push(next.head_persistence_from(&prev) * 100.0);
            clusters.push(next.head_count() as f64);
            prev = next;
        }
        (persistence.mean(), clusters.mean())
    });
    let mut persistence = RunningStats::new();
    let mut clusters = RunningStats::new();
    for (p, c) in results {
        persistence.push(p);
        clusters.push(c);
    }
    (persistence.mean(), clusters.mean())
}

/// Result of the Section 5 mobility experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct MobilityResult {
    /// Speed-range labels.
    pub scenarios: Vec<String>,
    /// Mean head persistence (%) with the Section 4.3 improvements.
    pub improved: Vec<f64>,
    /// Mean head persistence (%) without them.
    pub basic: Vec<f64>,
}

/// Runs the mobility experiment for pedestrian and vehicular speeds.
pub fn run(scale: ExperimentScale) -> MobilityResult {
    let duration = match scale.runs {
        r if r >= 1000 => 900.0, // the paper's 15 minutes
        r if r >= 50 => 240.0,
        _ => 40.0,
    };
    let seeds = (scale.runs / 20).clamp(2, 50);
    let improved = improved_clusterer();
    let basic = basic_clusterer();
    let mut result = MobilityResult {
        scenarios: Vec::new(),
        improved: Vec::new(),
        basic: Vec::new(),
    };
    for (label, vmax) in [("pedestrian 0-1.6 m/s", 1.6), ("vehicular 0-10 m/s", 10.0)] {
        result.scenarios.push(label.to_string());
        let (p_improved, _) =
            persistence_under_mobility(&scale, vmax, duration, 2.0, seeds, improved.as_ref());
        let (p_basic, _) =
            persistence_under_mobility(&scale, vmax, duration, 2.0, seeds, basic.as_ref());
        result.improved.push(p_improved);
        result.basic.push(p_basic);
    }
    result
}

/// A persistence-vs-speed sweep — the paper's future-work question
/// ("derive sharp bounds on the stabilization as a function of the
/// mobility, e.g., speed of the nodes").
#[derive(Clone, Debug, PartialEq)]
pub struct SpeedSweep {
    /// Top speeds measured, m/s.
    pub speeds: Vec<f64>,
    /// Mean head persistence (%) with the Section 4.3 rules.
    pub improved: Vec<f64>,
    /// Mean head persistence (%) without them.
    pub basic: Vec<f64>,
}

/// Sweeps head persistence over top speeds from strolling to driving.
pub fn run_speed_sweep(scale: ExperimentScale) -> SpeedSweep {
    let speeds = vec![0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
    let duration = if scale.runs >= 50 { 120.0 } else { 30.0 };
    let seeds = (scale.runs / 20).clamp(2, 30);
    let improved = improved_clusterer();
    let basic = basic_clusterer();
    let mut sweep = SpeedSweep {
        speeds: speeds.clone(),
        improved: Vec::new(),
        basic: Vec::new(),
    };
    for &v in &speeds {
        let (p_improved, _) =
            persistence_under_mobility(&scale, v, duration, 2.0, seeds, improved.as_ref());
        let (p_basic, _) =
            persistence_under_mobility(&scale, v, duration, 2.0, seeds, basic.as_ref());
        sweep.improved.push(p_improved);
        sweep.basic.push(p_basic);
    }
    sweep
}

/// Formats the speed sweep.
pub fn render_speed_sweep(sweep: &SpeedSweep) -> Table {
    let mut table = Table::new("Head persistence per 2 s window vs top speed");
    let mut headers = vec!["vmax (m/s)".to_string()];
    headers.extend(sweep.speeds.iter().map(|v| format!("{v}")));
    table.set_headers(headers);
    table.add_numeric_row("with 4.3 rules (%)", &sweep.improved, 1);
    table.add_numeric_row("without (%)", &sweep.basic, 1);
    table
}

/// Formats the result with the paper's reference numbers.
pub fn render(result: &MobilityResult) -> Table {
    let mut table = Table::new(
        "Mobility: % of cluster-heads re-elected per 2 s window \
         (paper: 82/78 pedestrian, 31/25 vehicular)",
    );
    table.set_headers(["scenario", "with 4.3 rules", "without"]);
    for (i, label) in result.scenarios.iter().enumerate() {
        table.add_row(
            label.clone(),
            vec![
                format!("{:.1}%", result.improved[i]),
                format!("{:.1}%", result.basic[i]),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvements_increase_persistence() {
        let scale = ExperimentScale {
            runs: 40,
            lambda: 400.0,
            ..ExperimentScale::quick()
        };
        let result = run(scale);
        assert_eq!(result.scenarios.len(), 2);
        for i in 0..2 {
            assert!(
                result.improved[i] >= result.basic[i] - 2.0,
                "{}: improved {:.1}% vs basic {:.1}%",
                result.scenarios[i],
                result.improved[i],
                result.basic[i]
            );
            assert!(result.improved[i] > 0.0 && result.improved[i] <= 100.0);
        }
        // Faster movement must hurt stability (paper: 82% → 31%).
        assert!(
            result.improved[0] > result.improved[1],
            "pedestrian {:.1}% should beat vehicular {:.1}%",
            result.improved[0],
            result.improved[1]
        );
    }

    #[test]
    fn render_shows_percentages() {
        let result = MobilityResult {
            scenarios: vec!["pedestrian".into()],
            improved: vec![82.0],
            basic: vec![78.0],
        };
        let s = render(&result).to_string();
        assert!(s.contains("82.0%"));
        assert!(s.contains("78.0%"));
    }
}
