//! Integration tests for the future-work extensions (hierarchy,
//! energy) and the refined media (fading, capture, thinning) — the
//! full stack must keep its guarantees under all of them.

use rand::SeedableRng;
use selfstab::prelude::*;

fn field(seed: u64) -> Topology {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    builders::poisson(350.0, 0.09, &mut rng)
}

#[test]
fn hierarchy_addresses_every_node_to_a_top_root() {
    let topo = field(1);
    let h = build_hierarchy(&topo, &OracleConfig::default(), 10);
    let roots = h.top_heads();
    assert!(!roots.is_empty());
    for p in topo.nodes() {
        let root = h.head_of(p, h.depth() - 1).expect("walks to the top");
        assert!(
            roots.contains(&root),
            "{p}'s top-level address {root} is not a root"
        );
    }
}

#[test]
fn hierarchy_over_distributed_level0() {
    // Level 0 computed by the *distributed* protocol, upper levels by
    // the recursive construction: must agree with the all-oracle
    // hierarchy since the distributed fixpoint equals the oracle.
    let topo = field(2);
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
        .topology(topo.clone())
        .seed(2)
        .build()
        .expect("valid scenario");
    net.run_to(&StopWhen::stable_for(3).within(500))
        .expect_stable("stabilizes");
    let distributed = extract_clustering(net.states()).unwrap();
    let all_oracle = build_hierarchy(&topo, &OracleConfig::default(), 10);
    assert_eq!(
        distributed,
        all_oracle.levels()[0].clustering,
        "level 0 must be the same fixpoint"
    );
}

#[test]
fn energy_rotation_preserves_election_invariants() {
    let topo = field(3);
    let model = EnergyModel::default();
    let mut batteries: Vec<f64> = topo
        .nodes()
        .map(|p| 10.0 + f64::from(p.value() % 90))
        .collect();
    for _ in 0..10 {
        let clustering =
            energy_aware_clustering(&topo, &batteries, &model, &OracleConfig::default());
        // Still a valid clustering: heads non-adjacent, chains intact.
        for h in clustering.heads() {
            for &q in topo.neighbors(h) {
                assert!(!clustering.is_head(q));
            }
        }
        for p in topo.nodes() {
            assert!(clustering.depth_in_hops(&topo, p).is_some());
        }
        selfstab::cluster::charge_round(&mut batteries, &clustering, &model);
    }
}

#[test]
fn protocol_stabilizes_over_fading_and_capture_media() {
    let topo = field(4);
    let want = oracle(&topo, &OracleConfig::default());
    let config = ClusterConfig {
        cache_ttl: 40,
        ..ClusterConfig::default()
    };
    let stop = StopWhen::stable_for(45).within(60_000);

    let mut net = Scenario::new(DensityCluster::new(config))
        .medium(DistanceFading::new(2.0, 0.3))
        .topology(topo.clone())
        .seed(4)
        .build()
        .expect("valid scenario");
    net.run_to(&stop).expect_stable("stabilizes under fading");
    assert_eq!(extract_clustering(net.states()).unwrap(), want);

    let mut net = Scenario::new(DensityCluster::new(config))
        .medium(CaptureCsma::new(24, 1.5))
        .topology(topo.clone())
        .seed(4)
        .build()
        .expect("valid scenario");
    net.run_to(&stop)
        .expect_stable("stabilizes under capture CSMA");
    assert_eq!(extract_clustering(net.states()).unwrap(), want);

    let mut net = Scenario::new(DensityCluster::new(config))
        .medium(Thinned::new(SlottedCsma::new(24), 0.85))
        .topology(topo)
        .seed(4)
        .build()
        .expect("valid scenario");
    net.run_to(&stop)
        .expect_stable("stabilizes under thinned CSMA");
    assert_eq!(extract_clustering(net.states()).unwrap(), want);
}

#[test]
fn fault_plan_scripts_a_full_robustness_scenario() {
    let topo = field(5);
    let hub = topo
        .nodes()
        .max_by_key(|&p| topo.degree(p))
        .expect("non-empty");
    let mut plan = FaultPlan::new();
    plan.at(20, Fault::CorruptFraction(0.5))
        .at(40, Fault::Isolate(hub))
        .at(60, Fault::SetTopology(topo.clone()))
        .at(80, Fault::CorruptAll);
    // The plan rides inside the scenario: the driver fires each fault
    // right before its step, whatever run method is used.
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
        .topology(topo.clone())
        .seed(5)
        .faults(plan)
        .build()
        .expect("valid scenario");
    net.run(120);
    // After the last fault at 80 we ran 40 more steps: converged again.
    net.run_to(&StopWhen::stable_for(4).within(5000))
        .expect_stable("stabilizes after the scripted faults");
    assert_eq!(
        extract_clustering(net.states()).unwrap(),
        oracle(&topo, &OracleConfig::default())
    );
}

#[test]
fn trace_records_the_convergence_curve() {
    let topo = field(6);
    let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
        .topology(topo)
        .seed(6)
        .build()
        .expect("valid scenario");
    let mut trace = Trace::new();
    for _ in 0..30 {
        trace.record(net.now(), net.states().iter().map(|s| s.output()).collect());
        net.step();
    }
    assert!(trace.is_stable_for(5), "30 steps is far past stabilization");
    let last_change = trace
        .last_change()
        .expect("the election moved at least once");
    assert!(last_change <= 15, "stabilized late: step {last_change}");
    // The number of flipping nodes must reach zero and stay there.
    let changes = trace.changed_counts();
    assert_eq!(*changes.last().unwrap(), 0);
}

#[test]
fn hierarchy_renders_at_every_level() {
    // The overlay carries positions, so any level can be drawn.
    let topo = field(7);
    let h = build_hierarchy(&topo, &OracleConfig::default(), 10);
    for level in h.levels() {
        if level.topology.positions().is_some() {
            let svg = svg_clustering(&level.topology, &level.clustering);
            assert!(svg.contains("<circle"));
        }
    }
}
