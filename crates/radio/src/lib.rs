//! Wireless medium models for multihop network simulation.
//!
//! The paper's only assumption about the radio layer is: *"there exists
//! a constant τ > 0 such that the probability of a frame transmission
//! without collision is at least τ"* (Section 4), with independent,
//! memoryless frame outcomes. This crate provides three media that
//! satisfy (or mechanically produce) that assumption:
//!
//! * [`PerfectMedium`] — every broadcast reaches every 1-neighbor
//!   (τ = 1); this is the paper's Section 5 "step" abstraction where a
//!   step is long enough for each node to broadcast once and hear all
//!   its neighbors.
//! * [`BernoulliLoss`] — each (sender, receiver) frame copy succeeds
//!   independently with probability exactly τ; the proofs' abstraction.
//! * [`SlottedCsma`] — senders pick a random slot inside the step;
//!   a receiver loses every frame in a slot where two or more of its
//!   neighbors transmit (hidden terminals included) or where it was
//!   itself transmitting (half-duplex). Here τ is *emergent*; measure
//!   it with [`measure_tau`].
//!
//! Three refinements compose with (or refine) those models:
//! [`DistanceFading`] (per-link loss growing with distance, floored at
//! τ), [`CaptureCsma`] (collisions can still deliver the much-closer
//! frame) and [`Thinned`] (extra iid loss stacked on any medium).
//!
//! # Examples
//!
//! ```
//! use mwn_graph::builders;
//! use mwn_radio::{measure_tau, Medium, PerfectMedium, SlottedCsma};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let topo = builders::uniform(60, 0.2, &mut rng);
//! let tau = measure_tau(&mut SlottedCsma::new(16), &topo, 50, &mut rng);
//! assert!(tau > 0.5, "CSMA with 16 slots should deliver most frames");
//! let tau1 = measure_tau(&mut PerfectMedium, &topo, 5, &mut rng);
//! assert_eq!(tau1, 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bernoulli;
mod capture;
mod csma;
mod fading;
mod medium;
mod occupancy;
mod perfect;
mod thinned;

pub use bernoulli::BernoulliLoss;
pub use capture::CaptureCsma;
pub use csma::SlottedCsma;
pub use fading::DistanceFading;
pub use medium::{measure_tau, Delivery, Medium};
pub use occupancy::{ContentionStreams, FullOccupancy, Occupancy, OccupancyView};
pub use perfect::PerfectMedium;
pub use thinned::Thinned;
