use std::cmp::Ordering;
use std::collections::BinaryHeap;

use mwn_graph::{NodeId, Topology, TopologyDelta};
use mwn_radio::{Delivery, Medium, PerfectMedium};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::{ActivityCore, NodeSet, SlotClock};
use crate::faults::{Followup, Lie};
use crate::network::Corruptor;
use crate::rng::{derive_seed, split_rng, streams};
use crate::scenario::TopologyDynamics;
use crate::{Activity, Corruptible, Fault, Protocol, SimError, StabilityTracker};

/// Parameters of the continuous-time execution model.
///
/// Nodes rebroadcast their shared variables at randomized intervals
/// (the timed discipline with "randomization to avoid collision" of
/// Herman & Tixeuil \[11\], which the paper adopts in Section 4). Frames
/// have a positive duration; under the built-in **collision channel**
/// two frames that overlap in time at a receiver collide and are both
/// lost there, while under a **medium channel**
/// ([`EventDriver::with_medium`]) the per-copy fate comes from the
/// [`Medium`] instead.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EventConfig {
    /// Mean time between two beacon opportunities of the same node.
    pub beacon_period: f64,
    /// Relative jitter: consecutive beacon slots of a node are
    /// `beacon_period · (1 ± jitter)` apart (mean exactly one period).
    pub jitter: f64,
    /// Time a frame occupies the channel at a receiver.
    pub frame_time: f64,
    /// Additional independent per-copy loss probability (0 = none).
    pub extra_loss: f64,
}

impl Default for EventConfig {
    fn default() -> Self {
        EventConfig {
            beacon_period: 1.0,
            jitter: 0.5,
            frame_time: 0.02,
            extra_loss: 0.0,
        }
    }
}

impl EventConfig {
    /// Checks every parameter's range.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint (non-positive
    /// period or frame time, jitter outside `[0, 1)`, loss outside
    /// `[0, 1)`).
    pub fn check(&self) -> Result<(), String> {
        if self.beacon_period <= 0.0 {
            return Err("beacon period must be positive".to_string());
        }
        if self.frame_time <= 0.0 {
            return Err("frame time must be positive".to_string());
        }
        if !(0.0..1.0).contains(&self.jitter) {
            return Err("jitter must be in [0, 1)".to_string());
        }
        if !(0.0..1.0).contains(&self.extra_loss) {
            return Err("extra loss must be in [0, 1)".to_string());
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range; see
    /// [`EventConfig::check`] for the non-panicking form.
    pub fn validate(&self) {
        if let Err(why) = self.check() {
            panic!("{why}");
        }
    }
}

/// Totally ordered event-queue key, min-first.
///
/// Ties at the same instant break on **intrinsic identity** (frame
/// arrivals before beacon slots, then node ids), never on insertion
/// order: a gated execution schedules fewer events than its eager
/// twin, so an insertion-sequence tiebreak would let the *schedule*
/// leak into the trajectory.
#[derive(Clone, Copy, Debug)]
struct EventKey {
    time: f64,
    /// 0 = frame arrival (Rx), 1 = beacon slot (Tx): a state change
    /// carried by a frame is visible to a same-instant broadcast.
    class: u8,
    a: u32,
    b: u32,
}

impl PartialEq for EventKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for EventKey {}
impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.class.cmp(&self.class))
            .then_with(|| other.a.cmp(&self.a))
            .then_with(|| other.b.cmp(&self.b))
    }
}

enum EventKind<B> {
    /// Node `node`'s beacon slot number `slot` fires.
    Tx { node: NodeId, slot: u64 },
    /// A frame sent by `sender` at `tx_time` finishes arriving at
    /// `receiver`.
    Rx {
        receiver: NodeId,
        sender: NodeId,
        tx_time: f64,
        /// The sender's beacon epoch at transmission time — what the
        /// receiver's reception row records on incorporation.
        tx_epoch: u32,
        beacon: B,
    },
}

struct Event<B> {
    key: EventKey,
    kind: EventKind<B>,
}

impl<B> PartialEq for Event<B> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<B> Eq for Event<B> {}
impl<B> PartialOrd for Event<B> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<B> Ord for Event<B> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

/// The continuous-time discrete-event driver, rebuilt on the shared
/// activity engine ([`crate::engine`]).
///
/// This realizes the asynchronous execution model under which the
/// paper's expected-constant-time results (Theorem 1, Lemmas 1–2) are
/// stated: beacons at randomized intervals, frames with real duration,
/// and a channel in which the per-frame success probability is some
/// τ > 0 — exactly the paper's hypothesis (read it off
/// [`EventDriver::measured_tau`]).
///
/// # Two channels
///
/// * the **collision channel** ([`EventDriver::new`]): receiver-side
///   overlap collisions (hidden terminals included) and half-duplex
///   radios — τ is *emergent*. Frame fates are contention-coupled, so
///   activity gating is off: every node keeps beaconing.
/// * a **medium channel** ([`EventDriver::with_medium`], what
///   [`crate::Scenario::build_events`] builds): the scenario's
///   [`Medium`] decides each copy's fate from a derived
///   per-(slot, sender) stream. When the medium has
///   [`Medium::independent_fates`] *and* the protocol declares
///   [`Activity::Gated`], silent nodes stop scheduling beacon slots
///   altogether.
///
/// # O(active) scheduling
///
/// The event queue holds one beacon-slot event per **armed** node plus
/// the frames currently in flight — never one entry per node of a
/// quiescent network. Beacon slots come from the engine's
/// [`crate::engine::SlotClock`]: node `p`'s `k`-th opportunity is a
/// pure function of `(seed, p, k)`, so a silent node consumes no
/// randomness and no queue space, and when something wakes it the next
/// slot is found arithmetically — exactly the schedule its
/// always-transmitting eager twin follows. Every other draw (guard
/// execution, frame fates, extra loss, corruption) is derived per
/// (event, node) the same way, which makes gated and eager execution
/// **byte-identical** on independent-fates media — the continuous-time
/// counterpart of the round driver's equivalence, property-tested in
/// `tests/engine_equivalence.rs`. After stabilization the queue drains
/// to empty: a quiet interval costs zero messages and O(1) work.
///
/// Scripted faults and [`TopologyDynamics`] (mobility) fire at
/// logical-step boundaries (multiples of the beacon period),
/// interleaved with the event queue in time order.
///
/// # Examples
///
/// ```
/// use mwn_graph::builders;
/// use mwn_sim::{EventConfig, EventDriver, Protocol};
/// use mwn_graph::NodeId;
/// use rand::rngs::StdRng;
///
/// struct MaxFlood;
/// impl Protocol for MaxFlood {
///     type State = u32;
///     type Beacon = u32;
///     fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 { node.value() }
///     fn beacon(&self, _node: NodeId, state: &u32) -> u32 { *state }
///     fn receive(&self, _n: NodeId, state: &mut u32, _f: NodeId, beacon: &u32, _now: u64) {
///         *state = (*state).max(*beacon);
///     }
///     fn update(&self, _n: NodeId, _s: &mut u32, _now: u64, _rng: &mut StdRng) {}
/// }
///
/// let topo = builders::line(5);
/// let mut driver = EventDriver::new(MaxFlood, topo, EventConfig::default(), 3);
/// driver.run_until_time(30.0);
/// assert!(driver.states().iter().all(|&s| s == 4));
/// ```
pub struct EventDriver<P: Protocol, M: Medium = PerfectMedium> {
    protocol: P,
    topo: Topology,
    config: EventConfig,
    /// The shared activity core: columnar table, dirty sets, derived
    /// stream bases.
    core: ActivityCore<P>,
    /// The stateless beacon-slot schedule.
    clock: SlotClock,
    /// `Some` = medium channel; `None` = built-in collision channel.
    medium: Option<M>,
    /// `true` when the user pinned the driver to eager scheduling.
    force_eager: bool,
    queue: BinaryHeap<Event<P::Beacon>>,
    /// Whether a node currently has a beacon-slot event in the queue.
    tx_armed: Vec<bool>,
    /// Recent transmission times per node (collision channel only).
    tx_history: Vec<Vec<f64>>,
    /// Base of the per-frame extra-loss streams.
    loss_base: u64,
    /// Dedicated stream for scripted-fault site selection, so fault
    /// injection never perturbs beacon timing or frame-fate randomness.
    fault_rng: StdRng,
    /// Scratch delivery for per-sender medium evaluation.
    delivery: Delivery,
    /// Scratch state snapshot for change detection under gating.
    scratch_state: Option<P::State>,
    /// Scratch node list (corruption wakes, isolation).
    scratch_nodes: Vec<NodeId>,
    time: f64,
    /// Beacon broadcasts so far (the communication-efficiency metric).
    messages: u64,
    /// Events popped so far.
    events: u64,
    frames_attempted: u64,
    frames_delivered: u64,
    /// Scripted faults in logical-step order: a fault scheduled at step
    /// `k` fires once the clock reaches `k` beacon periods, before any
    /// event at or past that time is processed.
    scripted: Vec<(u64, Fault)>,
    next_scripted: usize,
    /// Timed second phases of fired faults (resurrections, healings,
    /// lie expiries), as `(due_step, seq, followup)`; fired at their
    /// due logical-step boundary, after mobility but before scripted
    /// faults and any protocol event at that instant.
    followups: Vec<(u64, u64, Followup<P>)>,
    followup_seq: u64,
    corruptor: Option<Corruptor<P>>,
    /// Mobility (or other topology dynamics), ticked once per beacon
    /// period at logical-step boundaries.
    dynamics: Option<Box<dyn TopologyDynamics + Send>>,
    dynamics_step: u64,
    /// Nodes whose state changed since the last stability sample —
    /// what makes quiet-interval sampling O(changed), not O(n).
    changed_since: NodeSet,
}

impl<P: Protocol> EventDriver<P, PerfectMedium> {
    /// Creates the driver over the built-in **collision channel** with
    /// cold-start states; the first beacon slot of each node falls at a
    /// random phase within one period (nodes are *not* synchronized).
    pub fn new(protocol: P, topo: Topology, config: EventConfig, seed: u64) -> Self {
        Self::build(protocol, None, topo, config, seed)
    }
}

impl<P: Protocol, M: Medium> EventDriver<P, M> {
    /// Creates the driver with the frame fates decided by `medium`
    /// (the channel [`crate::Scenario::build_events`] wires up).
    ///
    /// Media with [`Medium::independent_fates`] — perfect, Bernoulli,
    /// fading — are evaluated once per transmission on a derived
    /// per-(slot, sender) stream, which is what permits activity
    /// gating. Contention media implementing the gated-contention
    /// contract ([`Medium::gated_contention`]) are evaluated the same
    /// way, with every other radio folded in as a statistical
    /// contender ([`mwn_radio::FullOccupancy`]) — on the continuous
    /// clock the eager twin beacons every period, so the full in-range
    /// population always contends, and gating extends to them too.
    /// Contention-coupled media with neither flag (e.g.
    /// [`mwn_radio::Thinned`]-wrapped CSMA) have no per-sender
    /// continuous-time semantics; for them the driver falls back to
    /// the built-in collision channel, which models contention
    /// directly.
    pub fn with_medium(
        protocol: P,
        medium: M,
        topo: Topology,
        config: EventConfig,
        seed: u64,
    ) -> Self {
        let medium = (medium.independent_fates() || medium.gated_contention()).then_some(medium);
        Self::build(protocol, medium, topo, config, seed)
    }

    fn build(
        protocol: P,
        medium: Option<M>,
        topo: Topology,
        config: EventConfig,
        seed: u64,
    ) -> Self {
        config.validate();
        let n = topo.len();
        let core = ActivityCore::new(&protocol, &topo, seed);
        let clock = SlotClock::new(seed, config.beacon_period, config.jitter, n);
        let mut driver = EventDriver {
            protocol,
            topo,
            config,
            core,
            clock,
            medium,
            force_eager: false,
            queue: BinaryHeap::new(),
            tx_armed: vec![false; n],
            tx_history: vec![Vec::new(); n],
            loss_base: derive_seed(seed, streams::EXTRA_LOSS),
            fault_rng: StdRng::seed_from_u64(derive_seed(seed, streams::EVENT_FAULT)),
            delivery: Delivery::empty(n),
            scratch_state: None,
            scratch_nodes: Vec::new(),
            time: 0.0,
            messages: 0,
            events: 0,
            frames_attempted: 0,
            frames_delivered: 0,
            scripted: Vec::new(),
            next_scripted: 0,
            followups: Vec::new(),
            followup_seq: 0,
            corruptor: None,
            dynamics: None,
            dynamics_step: 0,
            changed_since: NodeSet::new(n),
        };
        // Cold start: everyone has something to say (the table marks
        // all nodes send-pending), so everyone gets a first slot.
        driver.arm_pending();
        driver
    }

    pub(crate) fn install_script(
        &mut self,
        scripted: Vec<(u64, Fault)>,
        corruptor: Option<Corruptor<P>>,
    ) {
        self.scripted = scripted;
        self.next_scripted = 0;
        self.corruptor = corruptor;
    }

    pub(crate) fn install_dynamics(&mut self, dynamics: Box<dyn TopologyDynamics + Send>) {
        self.dynamics = Some(dynamics);
    }

    /// Detaches any topology dynamics attached by
    /// [`crate::Scenario::mobility`] — "the nodes stop moving". Returns
    /// whether dynamics were attached.
    pub fn stop_dynamics(&mut self) -> bool {
        self.dynamics.take().is_some()
    }

    /// `true` when the driver currently mutes silent nodes: a medium
    /// channel (independent fates or gated contention), a protocol
    /// under the [`Activity::Gated`] contract, and no eager pin.
    pub fn is_gated(&self) -> bool {
        !self.force_eager && self.medium.is_some() && self.protocol.activity() == Activity::Gated
    }

    /// Pins the driver to eager scheduling (`true`) or restores the
    /// automatic choice (`false`). Both modes are byte-identical for
    /// protocols honoring the [`Activity::Gated`] contract on
    /// independent-fates media — eager is the sequential reference the
    /// gated engine is tested against.
    pub fn set_eager(&mut self, eager: bool) {
        if self.force_eager && !eager {
            // Re-enabling gating after an eager stretch: the dirty
            // bookkeeping was degenerate, resynchronize conservatively.
            self.core.table.mark_all(&self.topo);
        }
        self.force_eager = eager;
        if eager {
            // Eager scheduling fires every node's every slot: arm the
            // whole population (retired nodes included).
            for i in 0..self.topo.len() {
                self.arm(NodeId::new(i as u32));
            }
        } else {
            self.arm_pending();
        }
    }

    /// The paper-comparable logical clock: beacon periods elapsed.
    fn logical_now(&self) -> u64 {
        (self.time / self.config.beacon_period) as u64
    }

    /// The wall-clock moment of logical step `k` (fault and mobility
    /// boundaries).
    fn step_time(&self, step: u64) -> f64 {
        step as f64 * self.config.beacon_period
    }

    fn note_changed(&mut self, p: NodeId) {
        self.changed_since.insert(p);
    }

    /// Schedules `p`'s next beacon slot at or after the current time,
    /// unless one is already queued.
    fn arm(&mut self, p: NodeId) {
        if self.tx_armed[p.index()] {
            return;
        }
        let (slot, t) = self.clock.next_at(p, self.time);
        self.tx_armed[p.index()] = true;
        self.queue.push(Event {
            key: EventKey {
                time: t,
                class: 1,
                a: p.value(),
                b: 0,
            },
            kind: EventKind::Tx { node: p, slot },
        });
    }

    /// Arms every node currently marked send-pending — called after
    /// any wake batch (cold start, faults, topology deltas, mode
    /// switches) so a pending sender always has a slot queued.
    fn arm_pending(&mut self) {
        let mut buf = std::mem::take(&mut self.scratch_nodes);
        self.core.table.send_pending.collect_sorted_into(&mut buf);
        for &p in &buf {
            self.arm(p);
        }
        self.scratch_nodes = buf;
    }

    /// Processes an incremental topology change through the shared
    /// core, then re-arms the woken senders.
    fn apply_delta(&mut self, delta: &TopologyDelta) {
        self.core.apply_delta(&self.protocol, &self.topo, delta);
        if delta.is_quiet() {
            return;
        }
        for p in delta.touched() {
            // link_down may have mutated the endpoint states.
            self.note_changed(p);
        }
        self.arm_pending();
    }

    /// One mobility tick at a logical-step boundary.
    fn tick_dynamics(&mut self) {
        let step = self.dynamics_step;
        self.dynamics_step += 1;
        self.time = self.time.max(self.step_time(step));
        let Some(mut dynamics) = self.dynamics.take() else {
            return;
        };
        if let Some(moves) = dynamics.next_moves(step) {
            if !moves.is_empty() {
                let delta = self.topo.apply_moves(moves);
                self.apply_delta(&delta);
            }
        } else if let Some(topo) = dynamics.next_topology(step) {
            assert_eq!(
                topo.len(),
                self.topo.len(),
                "topology dynamics must preserve the node count"
            );
            self.topo.clone_from(topo);
            self.core.table.mark_all(&self.topo);
            for i in 0..self.topo.len() {
                self.note_changed(NodeId::new(i as u32));
            }
            self.arm_pending();
        }
        self.dynamics = Some(dynamics);
    }

    fn corrupt_scripted(&mut self, p: NodeId) {
        // Each corruption event gets its own derived stream: however
        // much randomness the corruptor consumes, no node's timing or
        // frame-fate streams move.
        let mut rng = self.core.corrupt_rng(p);
        let corruptor = self
            .corruptor
            .as_ref()
            .expect("Scenario::faults installs the corruption hook");
        corruptor(
            &self.protocol,
            p,
            &mut self.core.table.states[p.index()],
            &mut rng,
        );
        self.core.wake_mutated(p, &self.topo);
        self.note_changed(p);
    }

    /// Severs every link of `p` (the node's radio goes dark), firing
    /// [`Protocol::link_down`] on both endpoints of every cut link.
    fn isolate(&mut self, p: NodeId) {
        let mut nbrs = std::mem::take(&mut self.scratch_nodes);
        self.core
            .isolate(&self.protocol, &mut self.topo, p, &mut nbrs);
        for &q in &nbrs {
            self.note_changed(q);
        }
        self.note_changed(p);
        self.scratch_nodes = nbrs;
    }

    /// Fires the next scripted fault (already known to be due).
    fn fire_one_fault(&mut self) {
        let (step, fault) = self.scripted[self.next_scripted].clone();
        self.next_scripted += 1;
        self.time = self.time.max(self.step_time(step));
        self.dispatch_fault(&fault);
    }

    /// Applies one fault right now (the clock already advanced to its
    /// logical instant). Shared by the scripted stream and
    /// [`EventDriver::inject`].
    fn dispatch_fault(&mut self, fault: &Fault) {
        let step = self.logical_now();
        match fault {
            Fault::CorruptNode(p) => self.corrupt_scripted(*p),
            Fault::CorruptAll => {
                for i in 0..self.topo.len() {
                    self.corrupt_scripted(NodeId::new(i as u32));
                }
            }
            Fault::CorruptFraction(f) => {
                let fraction = f.clamp(0.0, 1.0);
                let picks: Vec<NodeId> = self
                    .topo
                    .nodes()
                    .filter(|_| self.fault_rng.random_bool(fraction))
                    .collect();
                for p in picks {
                    self.corrupt_scripted(p);
                }
            }
            Fault::Isolate(p) => self.isolate(*p),
            Fault::SetTopology(topo) => {
                assert_eq!(
                    topo.len(),
                    self.topo.len(),
                    "scripted topology keeps the node count"
                );
                self.topo = topo.clone();
                self.core.table.mark_all(&self.topo);
                for i in 0..self.topo.len() {
                    self.note_changed(NodeId::new(i as u32));
                }
            }
            Fault::CrashRecover { node, dark_for } => {
                let state = self.core.table.states[node.index()].clone();
                let links = self.topo.neighbors(*node).to_vec();
                self.isolate(*node);
                self.push_followup(
                    step + (*dark_for).max(1),
                    Followup::Resurrect {
                        node: *node,
                        state,
                        links,
                    },
                );
            }
            Fault::ByzantineBeacon { node, lie, until } => {
                let beacon = match lie {
                    Lie::Forged => {
                        let corruptor = self
                            .corruptor
                            .as_ref()
                            .expect("Scenario::faults installs the corruption hook");
                        let mut rng = self.core.corrupt_rng(*node);
                        let mut fake = self.core.table.states[node.index()].clone();
                        corruptor(&self.protocol, *node, &mut fake, &mut rng);
                        self.protocol.beacon(*node, &fake)
                    }
                    Lie::Replayed => self.core.table.beacons[node.index()].clone(),
                };
                self.core.install_lie(&self.topo, *node, beacon);
                self.push_followup((*until).max(step + 1), Followup::ClearLie { node: *node });
            }
            Fault::PartitionHeal { cut, heal_at } => {
                let mut in_cut = vec![false; self.topo.len()];
                for &p in cut {
                    in_cut[p.index()] = true;
                }
                let edges: Vec<(NodeId, NodeId)> = self
                    .topo
                    .edges()
                    .filter(|&(u, v)| in_cut[u.index()] != in_cut[v.index()])
                    .collect();
                self.sever_edges(edges, (*heal_at).max(step + 1));
            }
            Fault::Jam { region, until } => {
                let members = region.members(&self.topo);
                let mut jammed = vec![false; self.topo.len()];
                for &p in &members {
                    jammed[p.index()] = true;
                }
                let edges: Vec<(NodeId, NodeId)> = self
                    .topo
                    .edges()
                    .filter(|&(u, v)| jammed[u.index()] || jammed[v.index()])
                    .collect();
                self.sever_edges(edges, (*until).max(step + 1));
            }
        }
        self.arm_pending();
    }

    /// Removes `edges` (all currently present) through the incremental
    /// delta path and schedules their restoration.
    fn sever_edges(&mut self, edges: Vec<(NodeId, NodeId)>, restore_at: u64) {
        if edges.is_empty() {
            return;
        }
        for &(u, v) in &edges {
            self.topo.remove_edge(u, v);
        }
        let delta = TopologyDelta {
            removed: edges.clone(),
            ..TopologyDelta::default()
        };
        self.apply_delta(&delta);
        self.push_followup(restore_at, Followup::RestoreEdges { edges });
    }

    /// Re-adds whichever of `edges` are still absent, through the
    /// incremental delta path.
    fn restore_edges(&mut self, edges: &[(NodeId, NodeId)]) {
        let mut added = Vec::new();
        for &(u, v) in edges {
            if !self.topo.has_edge(u, v) && self.topo.add_edge(u, v).is_ok() {
                added.push((u, v));
            }
        }
        let delta = TopologyDelta {
            added,
            ..TopologyDelta::default()
        };
        self.apply_delta(&delta);
    }

    fn push_followup(&mut self, due: u64, followup: Followup<P>) {
        let seq = self.followup_seq;
        self.followup_seq += 1;
        self.followups.push((due, seq, followup));
    }

    /// The wall-clock instant of the earliest pending followup.
    fn next_followup_time(&self) -> f64 {
        self.followups
            .iter()
            .map(|&(due, _, _)| self.step_time(due))
            .fold(f64::INFINITY, f64::min)
    }

    /// Fires the earliest-due followup batch: the clock advances to its
    /// logical-step boundary, every followup due by then runs in
    /// ascending `(due, seq)` order, and woken senders are re-armed.
    fn fire_due_followups(&mut self) {
        let d0 = self
            .followups
            .iter()
            .map(|&(due, _, _)| due)
            .min()
            .expect("caller checked a followup is pending");
        self.time = self.time.max(self.step_time(d0));
        let mut due = Vec::new();
        let mut i = 0;
        while i < self.followups.len() {
            if self.followups[i].0 <= d0 {
                due.push(self.followups.swap_remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_by_key(|&(d, seq, _)| (d, seq));
        for (_, _, followup) in due {
            self.apply_followup(followup);
        }
        self.arm_pending();
    }

    fn apply_followup(&mut self, followup: Followup<P>) {
        match followup {
            Followup::Resurrect { node, state, links } => {
                self.core.table.states[node.index()] = state;
                self.core.wake_mutated(node, &self.topo);
                self.note_changed(node);
                let edges: Vec<(NodeId, NodeId)> = links
                    .iter()
                    .map(|&q| if node < q { (node, q) } else { (q, node) })
                    .collect();
                self.restore_edges(&edges);
            }
            Followup::RestoreEdges { edges } => self.restore_edges(&edges),
            Followup::ClearLie { node } => {
                self.core.clear_lie(&self.protocol, &self.topo, node);
                self.note_changed(node);
            }
        }
    }

    /// Processes events up to (and including) time `t`; scripted
    /// faults and mobility ticks due in the interval fire at their
    /// scheduled times, interleaved correctly with the event queue.
    /// With an empty queue (a stabilized, gated network) the clock
    /// jumps straight to `t`: a quiet interval costs O(1).
    pub fn run_until_time(&mut self, t: f64) {
        loop {
            let event_time = self
                .queue
                .peek()
                .map(|e| e.key.time)
                .unwrap_or(f64::INFINITY);
            let fault_time = self
                .scripted
                .get(self.next_scripted)
                .map(|&(k, _)| self.step_time(k))
                .unwrap_or(f64::INFINITY);
            let dyn_time = if self.dynamics.is_some() {
                self.step_time(self.dynamics_step)
            } else {
                f64::INFINITY
            };
            let followup_time = self.next_followup_time();
            let next = event_time.min(fault_time).min(dyn_time).min(followup_time);
            if next > t {
                break;
            }
            // Priority at equal instants mirrors the round driver's
            // within-step order: topology moves, then fault followups
            // (resurrections/healings), then faults, then the protocol
            // events.
            if dyn_time <= next {
                self.tick_dynamics();
            } else if followup_time <= next {
                self.fire_due_followups();
            } else if fault_time <= next {
                self.fire_one_fault();
            } else {
                let Event { key, kind } = self.queue.pop().expect("peeked event exists");
                self.time = key.time;
                self.events += 1;
                match kind {
                    EventKind::Tx { node, slot } => self.handle_tx(node, slot),
                    EventKind::Rx {
                        receiver,
                        sender,
                        tx_time,
                        tx_epoch,
                        beacon,
                    } => self.handle_rx(receiver, sender, tx_time, tx_epoch, &beacon),
                }
            }
        }
        self.time = self.time.max(t);
    }

    /// Snapshots `p`'s state into the reusable scratch slot (change
    /// detection under gating).
    fn snapshot_state(&mut self, p: NodeId) {
        match &mut self.scratch_state {
            Some(s) => s.clone_from(&self.core.table.states[p.index()]),
            None => self.scratch_state = Some(self.core.table.states[p.index()].clone()),
        }
    }

    fn state_changed_since_snapshot(&self, p: NodeId) -> bool {
        self.scratch_state.as_ref() != Some(&self.core.table.states[p.index()])
    }

    fn handle_tx(&mut self, p: NodeId, slot: u64) {
        let gated = self.is_gated();
        if gated && !self.core.table.send_pending.contains(p) {
            // Nothing to say and nobody waiting: the slot lapses and
            // the node goes silent until something wakes it.
            self.tx_armed[p.index()] = false;
            return;
        }
        let now = self.logical_now();
        let t = self.time;
        // The guarded-command loop runs continuously; executing the
        // guards right before snapshotting the shared variables gives
        // the freshest beacon. The draw is derived per (instant, node),
        // so a muted slot consumes nothing.
        if gated {
            self.snapshot_state(p);
        }
        let mut rng = self.core.update_rng(t.to_bits(), p);
        self.protocol
            .update(p, &mut self.core.table.states[p.index()], now, &mut rng);
        let state_changed = gated && self.state_changed_since_snapshot(p);
        if state_changed {
            self.note_changed(p);
        }
        let beacon_changed = self.core.refresh_beacon(&self.protocol, &self.topo, p);
        if gated && !state_changed && !beacon_changed && self.core.all_caught_up(&self.topo, p) {
            // Retire: state at a fixpoint, beacon content unchanged,
            // every neighbor has incorporated it. The eager twin keeps
            // broadcasting here — pure no-ops by the silence contract.
            self.core.table.send_pending.remove(p);
            self.tx_armed[p.index()] = false;
            return;
        }
        // Broadcast.
        self.messages += 1;
        let epoch = self.core.table.epoch[p.index()];
        let beacon = self.core.table.beacons[p.index()].clone();
        let degree = self.topo.degree(p);
        self.frames_attempted += degree as u64;
        if let Some(medium) = self.medium.as_mut() {
            // Medium channel: one derived stream per (slot, sender)
            // decides every copy's fate — independent of who else is
            // transmitting, which is what keeps muted senders
            // unobservable. Gated-contention media fold the full
            // in-range population in as statistical contenders
            // (FullOccupancy): the eager twin beacons every period, so
            // using the same per-frame law in both modes keeps gating
            // unobservable there too.
            let mut rng = self.core.medium_rng(slot, p);
            self.delivery.reset(self.topo.len());
            if medium.gated_contention() {
                let streams = self.core.contention_streams(slot);
                medium.deliver_from_occupied(
                    &self.topo,
                    p,
                    &mwn_radio::FullOccupancy,
                    &streams,
                    &mut self.delivery,
                );
            } else {
                medium.deliver_from(&self.topo, p, &mut rng, &mut self.delivery);
            }
            let arrival = t + self.config.frame_time;
            for i in 0..self.delivery.touched.len() {
                let r = self.delivery.touched[i];
                if self.delivery.heard[r.index()].is_empty() {
                    continue;
                }
                if self.config.extra_loss > 0.0 && rng.random_bool(self.config.extra_loss) {
                    continue;
                }
                self.queue.push(Event {
                    key: EventKey {
                        time: arrival,
                        class: 0,
                        a: r.value(),
                        b: p.value(),
                    },
                    kind: EventKind::Rx {
                        receiver: r,
                        sender: p,
                        tx_time: t,
                        tx_epoch: epoch,
                        beacon: beacon.clone(),
                    },
                });
            }
        } else {
            // Collision channel: record the transmission, prune history
            // older than one collision window, and let every in-range
            // copy race to its receiver.
            let history = &mut self.tx_history[p.index()];
            history.push(t);
            let horizon = t - 4.0 * self.config.frame_time;
            history.retain(|&x| x >= horizon);
            let arrival = t + self.config.frame_time;
            for i in 0..self.topo.degree(p) {
                let r = self.topo.neighbors(p)[i];
                self.queue.push(Event {
                    key: EventKey {
                        time: arrival,
                        class: 0,
                        a: r.value(),
                        b: p.value(),
                    },
                    kind: EventKind::Rx {
                        receiver: r,
                        sender: p,
                        tx_time: t,
                        tx_epoch: epoch,
                        beacon: beacon.clone(),
                    },
                });
            }
        }
        // Schedule the next slot; under gating a later pop decides
        // whether it still has anything to say.
        let next_time = self.clock.slot_time(p, slot + 1);
        self.queue.push(Event {
            key: EventKey {
                time: next_time,
                class: 1,
                a: p.value(),
                b: 0,
            },
            kind: EventKind::Tx {
                node: p,
                slot: slot + 1,
            },
        });
    }

    fn handle_rx(&mut self, r: NodeId, s: NodeId, tx_time: f64, tx_epoch: u32, beacon: &P::Beacon) {
        // The link may have vanished while the frame was in flight
        // (mobility, isolation): radio range is a hard constraint.
        let Ok(idx) = self.topo.neighbors(r).binary_search(&s) else {
            return;
        };
        if self.medium.is_none() {
            // Collision channel: the frame occupied
            // (tx_time, tx_time + frame_time) at r. It is lost if r
            // itself, or any other neighbor of r, transmitted within
            // one frame_time of tx_time (overlapping frames), or to
            // the configured extra loss.
            let window = |times: &[f64]| {
                times
                    .iter()
                    .any(|&x| (x - tx_time).abs() < self.config.frame_time)
            };
            if window(&self.tx_history[r.index()]) {
                return; // half-duplex: r was talking
            }
            for &q in self.topo.neighbors(r) {
                if q != s && window(&self.tx_history[q.index()]) {
                    return; // collision (possibly a hidden terminal)
                }
            }
            if self.config.extra_loss > 0.0 {
                let mut rng = split_rng(
                    self.loss_base,
                    tx_time.to_bits(),
                    (u64::from(s.value()) << 32) | u64::from(r.value()),
                );
                if rng.random_bool(self.config.extra_loss) {
                    return;
                }
            }
        }
        // Counted here, after the channel checks *and* the in-flight
        // link check above, so both channels agree on what "delivered"
        // means — a frame whose link vanished mid-flight never counts.
        self.frames_delivered += 1;
        let gated = self.is_gated();
        let fresh = self.core.table.heard.get(r.index(), idx) != tx_epoch;
        if gated && !fresh {
            // Already incorporated this exact beacon epoch: the
            // silence contract makes the receive (and the follow-up
            // update) a state no-op — skip it entirely.
            return;
        }
        self.core.table.heard.set(r.index(), idx, tx_epoch);
        let now = self.logical_now();
        let t = self.time;
        if gated {
            self.snapshot_state(r);
        }
        self.protocol
            .receive(r, &mut self.core.table.states[r.index()], s, beacon, now);
        let mut rng = self.core.update_rng(t.to_bits(), r);
        self.protocol
            .update(r, &mut self.core.table.states[r.index()], now, &mut rng);
        if gated && self.state_changed_since_snapshot(r) {
            self.note_changed(r);
            // The state moved: r may have a new beacon to announce —
            // wake its slot schedule (its next pop decides).
            self.core.table.send_pending.insert(r);
            self.arm(r);
        }
    }

    /// Runs until a projection of all states is unchanged for
    /// `quiet_samples` consecutive samples taken every
    /// `sample_interval`, or until `max_time` has elapsed *from the
    /// current simulation time* (so the driver can be re-armed after a
    /// corruption to measure re-stabilization).
    ///
    /// Under gating the per-sample work is O(nodes changed since the
    /// last sample) — a quiet interval extends the streak without
    /// projecting anything.
    ///
    /// Returns the elapsed time at which the projection last changed
    /// (the stabilization duration), or `None` on timeout.
    pub fn run_until_stable<K, F>(
        &mut self,
        mut project: F,
        sample_interval: f64,
        quiet_samples: u64,
        max_time: f64,
    ) -> Option<f64>
    where
        K: PartialEq,
        F: FnMut(NodeId, &P::State) -> K,
    {
        self.run_until_projection_stable(
            move |_protocol, p, s| project(p, s),
            sample_interval,
            quiet_samples,
            max_time,
        )
    }

    /// The one sampling loop behind both stability APIs: the
    /// projection receives the protocol explicitly so the
    /// [`crate::Observable`] wrapper can delegate here without
    /// borrowing `self` inside its closure.
    fn run_until_projection_stable<K, F>(
        &mut self,
        mut project: F,
        sample_interval: f64,
        quiet_samples: u64,
        max_time: f64,
    ) -> Option<f64>
    where
        K: PartialEq,
        F: FnMut(&P, NodeId, &P::State) -> K,
    {
        assert!(sample_interval > 0.0, "sample interval must be positive");
        let start = self.time;
        let deadline = start + max_time;
        let gated = self.is_gated();
        let mut tracker: StabilityTracker<()> = StabilityTracker::new(quiet_samples);
        let mut proj: Vec<K> = Vec::new();
        let mut changed_buf: Vec<NodeId> = Vec::new();
        let mut sample_idx: u64 = 0;
        loop {
            let target = start + (sample_idx as f64) * sample_interval;
            if target > deadline {
                return None;
            }
            self.run_until_time(target);
            let changed = if gated && sample_idx > 0 {
                // Only nodes whose state moved since the last sample
                // can have a different projection: O(changed), not
                // O(n), per quiet sample.
                self.changed_since.drain_sorted_into(&mut changed_buf);
                let mut any = false;
                for &p in &changed_buf {
                    let fresh = project(&self.protocol, p, &self.core.table.states[p.index()]);
                    if proj[p.index()] != fresh {
                        proj[p.index()] = fresh;
                        any = true;
                    }
                }
                any
            } else {
                self.changed_since.clear();
                let fresh: Vec<K> = self
                    .core
                    .table
                    .states
                    .iter()
                    .enumerate()
                    .map(|(i, s)| project(&self.protocol, NodeId::new(i as u32), s))
                    .collect();
                let any = fresh != proj;
                if any {
                    proj = fresh;
                }
                any
            };
            if tracker.observe_flag(sample_idx, changed) {
                return Some(tracker.last_change() as f64 * sample_interval);
            }
            sample_idx += 1;
        }
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The continuous-time configuration this driver runs with.
    pub fn config(&self) -> &EventConfig {
        &self.config
    }

    /// All node states, indexed by [`NodeId`].
    pub fn states(&self) -> &[P::State] {
        &self.core.table.states
    }

    /// The state of one node.
    pub fn state(&self, p: NodeId) -> &P::State {
        &self.core.table.states[p.index()]
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Beacon broadcasts so far — the message-count metric of the
    /// communication-efficiency literature: for a silent protocol
    /// under gating this stops growing once the network stabilizes.
    pub fn messages_total(&self) -> u64 {
        self.messages
    }

    /// Events processed so far (beacon slots fired plus frame
    /// arrivals). For a stabilized, gated network this freezes: a
    /// quiet interval processes no events at all.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// (sender, 1-neighbor) frame copies in range so far — the
    /// denominator of [`EventDriver::measured_tau`], exposed so
    /// distributional agreement suites can pool exact counts into
    /// Wilson intervals instead of re-deriving them from the ratio.
    pub fn frames_attempted(&self) -> u64 {
        self.frames_attempted
    }

    /// Frame copies actually received so far.
    pub fn frames_delivered(&self) -> u64 {
        self.frames_delivered
    }

    /// The fraction of in-range frame copies delivered so far — the
    /// empirical τ of this run (1.0 before any traffic).
    pub fn measured_tau(&self) -> f64 {
        if self.frames_attempted == 0 {
            1.0
        } else {
            self.frames_delivered as f64 / self.frames_attempted as f64
        }
    }
}

impl<P: crate::Observable, M: Medium> EventDriver<P, M> {
    /// Projects every node's observable output into `buf` (cleared
    /// first); the buffer can be reused across samples.
    pub fn outputs_into(&self, buf: &mut Vec<P::Output>) {
        buf.clear();
        buf.extend(
            self.core
                .table
                .states
                .iter()
                .enumerate()
                .map(|(i, s)| self.protocol.output(NodeId::new(i as u32), s)),
        );
    }

    /// The observable output of every node.
    pub fn outputs(&self) -> Vec<P::Output> {
        let mut buf = Vec::with_capacity(self.core.table.states.len());
        self.outputs_into(&mut buf);
        buf
    }

    /// Runs until the protocol's canonical [`crate::Observable`]
    /// output is unchanged for `quiet_samples` consecutive samples
    /// taken every `sample_interval`, or until `max_time` has elapsed
    /// from the current simulation time — the closure-free counterpart
    /// of [`EventDriver::run_until_stable`].
    ///
    /// Returns the elapsed time at which the output last changed, or
    /// `None` on timeout.
    pub fn run_until_output_stable(
        &mut self,
        sample_interval: f64,
        quiet_samples: u64,
        max_time: f64,
    ) -> Option<f64> {
        self.run_until_projection_stable(
            |protocol, p, s| protocol.output(p, s),
            sample_interval,
            quiet_samples,
            max_time,
        )
    }
}

impl<P: Corruptible, M: Medium> EventDriver<P, M> {
    /// Corrupts every node state (arbitrary-configuration start).
    ///
    /// Draws from per-event derived streams, never from timing or
    /// frame-fate streams: injecting a corruption does not shift any
    /// node's transmission schedule.
    pub fn corrupt_all(&mut self) {
        for i in 0..self.topo.len() {
            let p = NodeId::new(i as u32);
            let mut rng = self.core.corrupt_rng(p);
            self.protocol
                .corrupt(p, &mut self.core.table.states[p.index()], &mut rng);
            self.core.wake_mutated(p, &self.topo);
            self.note_changed(p);
        }
        self.arm_pending();
    }

    /// Applies one [`Fault`] at the current simulation time — the
    /// entry point the chaos harness uses to drive unscripted
    /// campaigns. Timed second phases (resurrection, healing, lie
    /// expiry) are scheduled at later logical-step boundaries and fire
    /// before any protocol event at that instant.
    ///
    /// # Errors
    ///
    /// [`SimError::NodeCountMismatch`] for a [`Fault::SetTopology`]
    /// that changes the node count.
    pub fn inject(&mut self, fault: &Fault) -> Result<(), SimError> {
        if self.corruptor.is_none() {
            self.corruptor = Some(Box::new(
                |protocol: &P, p, state: &mut P::State, rng: &mut StdRng| {
                    protocol.corrupt(p, state, rng);
                },
            ));
        }
        if let Fault::SetTopology(topo) = fault {
            if topo.len() != self.topo.len() {
                return Err(SimError::NodeCountMismatch {
                    expected: self.topo.len(),
                    got: topo.len(),
                });
            }
        }
        self.dispatch_fault(fault);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_graph::builders;
    use mwn_radio::BernoulliLoss;

    struct MaxFlood;
    impl Protocol for MaxFlood {
        type State = u32;
        type Beacon = u32;
        fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 {
            node.value()
        }
        fn beacon(&self, _node: NodeId, state: &u32) -> u32 {
            *state
        }
        fn receive(&self, _node: NodeId, state: &mut u32, _from: NodeId, beacon: &u32, _now: u64) {
            *state = (*state).max(*beacon);
        }
        fn update(&self, node: NodeId, state: &mut u32, _now: u64, _rng: &mut StdRng) {
            // Re-asserting the node's own id is what makes the flood
            // self-stabilizing: corrupted state cannot erase the source.
            *state = (*state).max(node.value());
        }
    }
    impl Corruptible for MaxFlood {
        fn corrupt(&self, _node: NodeId, state: &mut u32, _rng: &mut StdRng) {
            *state = 0;
        }
    }

    /// The flood with the silence contract declared.
    struct GatedFlood;
    impl Protocol for GatedFlood {
        type State = u32;
        type Beacon = u32;
        fn init(&self, node: NodeId, _rng: &mut StdRng) -> u32 {
            node.value()
        }
        fn beacon(&self, _node: NodeId, state: &u32) -> u32 {
            *state
        }
        fn receive(&self, _node: NodeId, state: &mut u32, _from: NodeId, beacon: &u32, _now: u64) {
            *state = (*state).max(*beacon);
        }
        fn update(&self, node: NodeId, state: &mut u32, _now: u64, _rng: &mut StdRng) {
            *state = (*state).max(node.value());
        }
        fn activity(&self) -> Activity {
            Activity::Gated
        }
        fn beacon_changed(&self, old: &u32, new: &u32) -> bool {
            old != new
        }
    }
    impl Corruptible for GatedFlood {
        fn corrupt(&self, _node: NodeId, state: &mut u32, _rng: &mut StdRng) {
            *state = 0;
        }
    }

    #[test]
    fn flood_converges_in_continuous_time() {
        let mut d = EventDriver::new(MaxFlood, builders::line(6), EventConfig::default(), 1);
        d.run_until_time(40.0);
        assert!(d.states().iter().all(|&s| s == 5));
        assert!(d.measured_tau() > 0.5);
    }

    #[test]
    fn stabilization_time_scales_with_distance() {
        // Information needs ~1 beacon period per hop: a longer line
        // takes proportionally longer.
        let cfg = EventConfig::default();
        let mut short = EventDriver::new(MaxFlood, builders::line(4), cfg, 2);
        let mut long = EventDriver::new(MaxFlood, builders::line(30), cfg, 2);
        let t_short = short
            .run_until_stable(|_, s| *s, 0.5, 10, 500.0)
            .expect("short line converges");
        let t_long = long
            .run_until_stable(|_, s| *s, 0.5, 10, 500.0)
            .expect("long line converges");
        assert!(
            t_long > t_short,
            "30-hop line ({t_long}) should take longer than 4-hop ({t_short})"
        );
    }

    #[test]
    fn collisions_occur_on_dense_graphs() {
        // Long frames → many overlaps on the collision channel. At 0.1
        // the per-frame clear probability on K12 keeps τ bounded away
        // from both 0 and 1 regardless of the RNG stream.
        let cfg = EventConfig {
            frame_time: 0.1,
            ..EventConfig::default()
        };
        let mut d = EventDriver::new(MaxFlood, builders::complete(12), cfg, 3);
        d.run_until_time(30.0);
        assert!(
            d.measured_tau() < 0.9,
            "long frames on K12 must collide, τ = {}",
            d.measured_tau()
        );
        assert!(d.measured_tau() > 0.0);
    }

    #[test]
    fn corruption_then_reconvergence() {
        let mut d = EventDriver::new(MaxFlood, builders::ring(8), EventConfig::default(), 4);
        d.run_until_time(20.0);
        d.corrupt_all();
        assert!(d.states().iter().all(|&s| s == 0));
        d.run_until_time(60.0);
        assert!(d.states().iter().all(|&s| s == 7));
    }

    #[test]
    fn extra_loss_slows_but_does_not_stop_convergence() {
        let cfg = EventConfig {
            extra_loss: 0.6,
            ..EventConfig::default()
        };
        let mut d = EventDriver::new(MaxFlood, builders::line(5), cfg, 5);
        d.run_until_time(200.0);
        assert!(d.states().iter().all(|&s| s == 4));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut d =
                EventDriver::new(MaxFlood, builders::ring(10), EventConfig::default(), seed);
            d.run_until_time(15.0);
            d.states().to_vec()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn scripted_faults_fire_at_logical_steps() {
        use crate::{FaultPlan, Scenario};
        // Corrupt everyone at logical step 20 (t = 20 beacon periods):
        // by then the line has converged, so the fault visibly knocks
        // the states down before the flood heals them again.
        let mut plan = FaultPlan::new();
        plan.at(20, Fault::CorruptAll);
        let mut driver = Scenario::new(MaxFlood)
            .topology(builders::line(5))
            .seed(6)
            .faults(plan)
            .build_events(EventConfig::default())
            .expect("event scenario with faults builds");
        driver.run_until_time(19.5);
        assert!(
            driver.states().iter().all(|&s| s == 4),
            "converged before the fault"
        );
        driver.run_until_time(20.0);
        assert!(
            driver.states().iter().any(|&s| s < 4),
            "corruption at step 20 must be visible at t = 20"
        );
        driver.run_until_time(60.0);
        assert!(
            driver.states().iter().all(|&s| s == 4),
            "self-stabilization heals the scripted fault"
        );
    }

    #[test]
    fn scripted_isolation_cuts_the_event_driver_topology() {
        use crate::{FaultPlan, Scenario};
        let mut plan = FaultPlan::new();
        plan.at(0, Fault::Isolate(NodeId::new(2)));
        let mut driver = Scenario::new(MaxFlood)
            .topology(builders::line(5))
            .seed(7)
            .faults(plan)
            .build_events(EventConfig::default())
            .expect("builds");
        driver.run_until_time(50.0);
        assert_eq!(
            *driver.state(NodeId::new(0)),
            1,
            "max id cannot cross the cut"
        );
    }

    #[test]
    fn scripted_fault_injection_preserves_beacon_timing() {
        use crate::{FaultPlan, Scenario};
        // A zero-effect fault script must not perturb the trajectory:
        // CorruptFraction draws from the dedicated fault stream.
        let run = |script: bool| {
            let mut scenario = Scenario::new(MaxFlood).topology(builders::ring(8)).seed(9);
            if script {
                let mut plan = FaultPlan::new();
                plan.at(5, Fault::CorruptFraction(0.0));
                scenario = scenario.faults(plan);
            }
            let mut driver = scenario
                .build_events(EventConfig::default())
                .expect("builds");
            driver.run_until_time(30.0);
            (driver.states().to_vec(), driver.measured_tau())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn gated_event_driver_goes_silent_after_stabilization() {
        let mut d = EventDriver::with_medium(
            GatedFlood,
            mwn_radio::PerfectMedium,
            builders::line(6),
            EventConfig::default(),
            11,
        );
        assert!(d.is_gated());
        d.run_until_time(40.0);
        assert!(d.states().iter().all(|&s| s == 5));
        // Let the last pending beacons retire, then measure silence.
        d.run_until_time(45.0);
        let (msgs, events) = (d.messages_total(), d.events_processed());
        d.run_until_time(1045.0);
        assert_eq!(d.messages_total(), msgs, "silent network must not send");
        assert_eq!(
            d.events_processed(),
            events,
            "a quiet interval processes zero events"
        );
        // Waking one node re-floods without a full restart.
        d.corrupt_all();
        d.run_until_time(1100.0);
        assert!(d.states().iter().all(|&s| s == 5), "healed after wake");
        assert!(d.messages_total() > msgs, "healing requires traffic");
    }

    #[test]
    fn gated_equals_eager_in_continuous_time() {
        // The continuous-time equivalence: muting silent senders on an
        // independent-fates medium is unobservable in the trajectory.
        let run = |eager: bool| {
            let mut d = EventDriver::with_medium(
                GatedFlood,
                BernoulliLoss::new(0.7),
                builders::ring(9),
                EventConfig::default(),
                13,
            );
            d.set_eager(eager);
            d.run_until_time(25.0);
            d.corrupt_all();
            let stable = d.run_until_stable(|_, s| *s, 0.5, 6, 400.0);
            (d.states().to_vec(), stable)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn gated_contention_media_gate_in_continuous_time() {
        // Since the statistical-occupancy contract, both shipped CSMA
        // media run on the medium channel and gate silent senders: a
        // stabilized CSMA network drains its queue like Bernoulli does.
        let mut d = EventDriver::with_medium(
            GatedFlood,
            mwn_radio::SlottedCsma::new(8),
            builders::line(4),
            EventConfig::default(),
            2,
        );
        assert!(d.is_gated(), "gated contention extends to the event clock");
        d.run_until_time(40.0);
        assert!(d.states().iter().all(|&s| s == 3));
        d.run_until_time(60.0);
        let (msgs, events) = (d.messages_total(), d.events_processed());
        d.run_until_time(1060.0);
        assert_eq!(d.messages_total(), msgs, "stabilized CSMA goes silent");
        assert_eq!(d.events_processed(), events, "quiet eon processes nothing");
    }

    #[test]
    fn unconverted_contention_media_fall_back_to_the_collision_channel() {
        // A medium with neither independent fates nor the
        // gated-contention contract still forces the built-in
        // collision channel (and eager scheduling).
        struct OpaqueContention;
        impl Medium for OpaqueContention {
            fn deliver_into(
                &mut self,
                topo: &Topology,
                senders: &[NodeId],
                _rng: &mut StdRng,
                out: &mut Delivery,
            ) {
                for &s in senders {
                    out.attempted += topo.degree(s);
                }
            }
            fn name(&self) -> &'static str {
                "opaque-contention"
            }
        }
        let d = EventDriver::with_medium(
            GatedFlood,
            OpaqueContention,
            builders::line(4),
            EventConfig::default(),
            2,
        );
        assert!(
            !d.is_gated(),
            "contention without the occupancy contract must not gate"
        );
    }

    #[test]
    #[should_panic(expected = "beacon period must be positive")]
    fn invalid_config_rejected() {
        let cfg = EventConfig {
            beacon_period: 0.0,
            ..EventConfig::default()
        };
        let _ = EventDriver::new(MaxFlood, builders::line(2), cfg, 0);
    }
}
