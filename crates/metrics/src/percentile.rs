//! Percentiles: exact (sort-based) and streaming (fixed-bucket).
//!
//! The traffic plane reports delivery-latency percentiles over millions
//! of packets. Two tools cover the two regimes:
//!
//! * [`percentiles`] — exact linearly-interpolated order statistics
//!   over a sample you can afford to hold and sort;
//! * [`LatencyHistogram`] — a fixed-bucket streaming sketch whose hot
//!   path ([`LatencyHistogram::record`]) is allocation-free, with
//!   quantile error bounded by one bucket width.

/// Exact percentiles by sorting `samples` in place.
///
/// Each entry of `qs` is a quantile in `[0, 1]`; the result has one
/// value per quantile, computed with the common linear interpolation
/// between closest order statistics (type R-7, the numpy default).
/// An empty sample yields `NaN` for every quantile.
///
/// # Examples
///
/// ```
/// use mwn_metrics::percentiles;
///
/// let mut xs = vec![4.0, 1.0, 3.0, 2.0];
/// let ps = percentiles(&mut xs, &[0.0, 0.5, 1.0]);
/// assert_eq!(ps, vec![1.0, 2.5, 4.0]);
/// ```
pub fn percentiles(samples: &mut [f64], qs: &[f64]) -> Vec<f64> {
    if samples.is_empty() {
        return vec![f64::NAN; qs.len()];
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN-free samples"));
    let n = samples.len();
    qs.iter()
        .map(|&q| {
            let q = q.clamp(0.0, 1.0);
            let h = q * (n - 1) as f64;
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            let frac = h - lo as f64;
            samples[lo] + (samples[hi] - samples[lo]) * frac
        })
        .collect()
}

/// A streaming fixed-bucket latency sketch.
///
/// Values land in `buckets` equal-width bins over
/// `[0, buckets × width)`; anything larger is counted in a single
/// overflow bin. [`LatencyHistogram::record`] touches one counter and
/// never allocates, so it is safe inside a per-packet hot loop.
/// [`LatencyHistogram::quantile`] answers with the *upper edge* of the
/// bucket holding the requested rank (conservative: never
/// under-reports), so its error versus the exact sorted percentile is
/// at most one bucket width — unit-tested against [`percentiles`].
///
/// # Examples
///
/// ```
/// use mwn_metrics::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new(1.0, 64);
/// for v in [1.5, 2.5, 3.5, 100.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.quantile(0.5), 3.0); // upper edge of 2.5's bucket
/// assert_eq!(h.quantile(1.0), 100.0); // overflow reports the max
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyHistogram {
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: f64,
    max: f64,
}

impl LatencyHistogram {
    /// A histogram of `buckets` bins of `width` each, covering
    /// `[0, buckets × width)` plus one overflow bin.
    ///
    /// # Panics
    ///
    /// Panics when `width` is not strictly positive or `buckets` is 0.
    pub fn new(width: f64, buckets: usize) -> Self {
        assert!(width > 0.0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        LatencyHistogram {
            width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one value (negative values clamp to the first bucket).
    /// Allocation-free.
    #[inline]
    pub fn record(&mut self, v: f64) {
        let v = if v < 0.0 { 0.0 } else { v };
        let idx = (v / self.width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean of the recorded values (exact, not bucketed). `NaN` when
    /// empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            f64::NAN
        } else {
            self.sum / self.total as f64
        }
    }

    /// Largest recorded value. `NaN` when empty.
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Count in the overflow bin (values ≥ `buckets × width`).
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }

    /// The value at quantile `q ∈ [0, 1]`: the upper edge of the
    /// bucket containing the rank-`⌈q·n⌉` value (clamped to the
    /// recorded max), or the exact max for ranks in the overflow bin.
    /// `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let edge = (i + 1) as f64 * self.width;
                return if edge > self.max { self.max } else { edge };
            }
        }
        self.max
    }

    /// Merges another histogram of the identical shape into this one.
    ///
    /// # Panics
    ///
    /// Panics when the widths or bucket counts differ.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(self.width, other.width, "bucket widths differ");
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "bucket counts differ"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn percentiles_match_hand_computed_order_stats() {
        let mut xs = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        let ps = percentiles(&mut xs, &[0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(ps, vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        let mut xs = vec![1.0, 2.0];
        assert_eq!(percentiles(&mut xs, &[0.5]), vec![1.5]);
    }

    #[test]
    fn percentiles_of_empty_sample_are_nan() {
        let ps = percentiles(&mut [], &[0.5, 0.99]);
        assert_eq!(ps.len(), 2);
        assert!(ps.iter().all(|p| p.is_nan()));
    }

    #[test]
    fn percentiles_sorts_in_place() {
        let mut xs = vec![3.0, 1.0, 2.0];
        percentiles(&mut xs, &[0.5]);
        assert_eq!(xs, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn histogram_quantiles_within_one_bucket_of_exact_sort() {
        let mut rng = StdRng::seed_from_u64(7);
        let width = 2.0;
        let mut h = LatencyHistogram::new(width, 200);
        let mut exact: Vec<f64> = Vec::new();
        for _ in 0..10_000 {
            // Skewed latencies: mostly small, occasional large.
            let v = if rng.random_bool(0.9) {
                rng.random_range(0.0..50.0)
            } else {
                rng.random_range(50.0..380.0)
            };
            h.record(v);
            exact.push(v);
        }
        let qs = [0.5, 0.95, 0.99];
        let truth = percentiles(&mut exact, &qs);
        for (&q, &t) in qs.iter().zip(&truth) {
            let est = h.quantile(q);
            assert!(
                (est - t).abs() <= width,
                "q={q}: histogram {est} vs exact {t} (width {width})"
            );
            assert!(est >= t - width, "quantile must not under-report");
        }
    }

    #[test]
    fn histogram_overflow_ranks_report_exact_max() {
        let mut h = LatencyHistogram::new(1.0, 4);
        for v in [0.5, 1.5, 9.0, 17.0] {
            h.record(v);
        }
        assert_eq!(h.overflow_count(), 2);
        assert_eq!(h.quantile(1.0), 17.0);
        assert_eq!(h.quantile(0.99), 17.0);
        assert_eq!(h.quantile(0.25), 1.0);
    }

    #[test]
    fn histogram_empty_and_mean_and_merge() {
        let mut a = LatencyHistogram::new(1.0, 8);
        assert!(a.is_empty());
        assert!(a.quantile(0.5).is_nan());
        assert!(a.mean().is_nan());
        a.record(1.0);
        a.record(3.0);
        let mut b = LatencyHistogram::new(1.0, 8);
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.mean() - 3.0).abs() < 1e-12);
        assert_eq!(a.max(), 5.0);
    }

    #[test]
    fn histogram_is_deterministic_under_merge_order() {
        let vals = [0.3, 4.2, 9.9, 2.2, 7.7, 0.0];
        let mut whole = LatencyHistogram::new(0.5, 32);
        for &v in &vals {
            whole.record(v);
        }
        let mut left = LatencyHistogram::new(0.5, 32);
        let mut right = LatencyHistogram::new(0.5, 32);
        for &v in &vals[..3] {
            left.record(v);
        }
        for &v in &vals[3..] {
            right.record(v);
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }
}
