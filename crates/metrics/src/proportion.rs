//! Binomial-proportion confidence intervals for convergence-probability
//! experiments.
//!
//! Weak/probabilistic stabilization experiments (Devismes et al.)
//! estimate "the system stabilizes within k steps with probability p"
//! from Bernoulli trials over seeds. The Wilson score interval is the
//! standard small-sample interval for such proportions: unlike the
//! naive normal approximation it never leaves `[0, 1]` and behaves at
//! p̂ ∈ {0, 1}.

/// The Wilson score confidence interval for a binomial proportion:
/// `successes` out of `trials`, at normal quantile `z` (1.96 ≈ 95%).
///
/// Returns `(low, high)` with `0 ≤ low ≤ high ≤ 1`. With zero trials
/// the interval is the uninformative `(0, 1)`.
///
/// # Examples
///
/// ```
/// use mwn_metrics::wilson_interval;
///
/// let (low, high) = wilson_interval(95, 100, 1.96);
/// assert!(low > 0.88 && low < 0.95);
/// assert!(high > 0.95 && high < 1.0);
/// ```
pub fn wilson_interval(successes: usize, trials: usize, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// A counted proportion with its 95% Wilson interval — the record a
/// convergence-probability sweep reports per parameter point.
///
/// # Examples
///
/// ```
/// use mwn_metrics::Proportion;
///
/// let p = Proportion::new(98, 100);
/// assert_eq!(p.fraction(), 0.98);
/// let (low, high) = p.wilson95();
/// assert!(low < 0.98 && 0.98 < high);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Proportion {
    /// Number of successes.
    pub successes: usize,
    /// Number of trials.
    pub trials: usize,
}

impl Proportion {
    /// Wraps `successes` out of `trials`.
    ///
    /// # Panics
    ///
    /// Panics if `successes > trials`.
    pub fn new(successes: usize, trials: usize) -> Self {
        assert!(
            successes <= trials,
            "successes ({successes}) cannot exceed trials ({trials})"
        );
        Proportion { successes, trials }
    }

    /// The point estimate (1.0 for zero trials).
    pub fn fraction(&self) -> f64 {
        if self.trials == 0 {
            1.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// The 95% Wilson score interval.
    pub fn wilson95(&self) -> (f64, f64) {
        wilson_interval(self.successes, self.trials, 1.96)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contains_the_point_estimate() {
        for &(k, n) in &[(0usize, 10usize), (5, 10), (10, 10), (999, 1000)] {
            let (low, high) = wilson_interval(k, n, 1.96);
            let p = k as f64 / n as f64;
            assert!(low <= p + 1e-12 && p <= high + 1e-12, "k={k} n={n}");
            assert!((0.0..=1.0).contains(&low) && (0.0..=1.0).contains(&high));
        }
    }

    #[test]
    fn more_trials_narrow_the_interval() {
        let (l1, h1) = wilson_interval(8, 10, 1.96);
        let (l2, h2) = wilson_interval(800, 1000, 1.96);
        assert!(h2 - l2 < h1 - l1);
    }

    #[test]
    fn degenerate_extremes_stay_in_unit_range() {
        let (low, high) = wilson_interval(0, 20, 1.96);
        assert_eq!(low, 0.0);
        assert!(high > 0.0 && high < 0.3, "upper bound {high}");
        let (low, high) = wilson_interval(20, 20, 1.96);
        assert!(low > 0.7 && low < 1.0, "lower bound {low}");
        assert_eq!(high, 1.0);
    }

    #[test]
    fn zero_trials_is_uninformative() {
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
        assert_eq!(Proportion::new(0, 0).fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn more_successes_than_trials_rejected() {
        let _ = Proportion::new(3, 2);
    }
}
