//! Columnar per-node hot state for the activity-driven round driver.
//!
//! The step loop's working set — protocol states, current beacon
//! snapshots, beacon epochs, per-edge reception epochs and the dirty
//! sets — is regrouped here as parallel columns indexed by [`NodeId`],
//! so the driver iterates dense active lists instead of walking n
//! nodes, and a fully quiescent step touches no per-node memory at all.

use mwn_graph::{NodeId, Topology};

use crate::Protocol;

/// Beacon-epoch sentinel meaning "never received anything from this
/// neighbor" — forces the neighbor to (re-)broadcast at least once.
pub(crate) const NEVER: u32 = u32::MAX;

/// An index-backed node set: O(1) insert and membership via a bitset,
/// dense iteration via a companion list. Removal is lazy (flag
/// cleared, entry skipped at collection time), so every operation on
/// the hot path is constant-time and allocation-free in steady state.
#[derive(Clone, Debug, Default)]
pub(crate) struct NodeSet {
    member: Vec<bool>,
    list: Vec<NodeId>,
}

impl NodeSet {
    pub fn new(n: usize) -> Self {
        NodeSet {
            member: vec![false; n],
            list: Vec::with_capacity(n.min(1024)),
        }
    }

    #[inline]
    pub fn insert(&mut self, p: NodeId) {
        if !self.member[p.index()] {
            self.member[p.index()] = true;
            self.list.push(p);
        }
    }

    #[inline]
    pub fn remove(&mut self, p: NodeId) {
        self.member[p.index()] = false;
    }

    #[inline]
    pub fn contains(&self, p: NodeId) -> bool {
        self.member[p.index()]
    }

    /// Empties the set in O(marked), keeping the buffers.
    pub fn clear(&mut self) {
        for i in 0..self.list.len() {
            let p = self.list[i];
            self.member[p.index()] = false;
        }
        self.list.clear();
    }

    pub fn insert_all(&mut self) {
        self.list.clear();
        for i in 0..self.member.len() {
            self.member[i] = true;
            self.list.push(NodeId::new(i as u32));
        }
    }

    /// Copies the live members into `out`, sorted and deduplicated, and
    /// compacts the internal list (drops lazily-removed entries).
    pub fn collect_sorted_into(&mut self, out: &mut Vec<NodeId>) {
        out.clear();
        self.list.retain(|&p| self.member[p.index()]);
        out.extend_from_slice(&self.list);
        out.sort_unstable();
        out.dedup();
    }

    /// Copies the live members into `out` (sorted, deduplicated), then
    /// empties the set.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<NodeId>) {
        self.collect_sorted_into(out);
        for &p in out.iter() {
            self.member[p.index()] = false;
        }
        self.list.clear();
    }
}

/// The columnar node table: every per-node column the step loop reads
/// or writes, plus the scheduling sets.
pub(crate) struct NodeTable<P: Protocol> {
    /// Protocol state per node.
    pub states: Vec<P::State>,
    /// The beacon each node currently broadcasts (recomputed only when
    /// the node's state changed).
    pub beacons: Vec<P::Beacon>,
    /// Beacon version per node: bumped whenever the recomputed beacon
    /// differs ([`Protocol::beacon_changed`]) from the previous one.
    pub epoch: Vec<u32>,
    /// `heard[r][k]`: the epoch of neighbor `adj[r][k]`'s beacon that
    /// `r` last incorporated ([`NEVER`] if none). Kept aligned with the
    /// topology's sorted adjacency lists.
    pub heard: Vec<Vec<u32>>,
    /// Nodes whose beacon must be recomputed next step (state changed).
    pub beacon_stale: NodeSet,
    /// Nodes whose guards must run next step.
    pub update_dirty: NodeSet,
    /// Nodes with at least one neighbor that has not yet received their
    /// current beacon epoch.
    pub send_pending: NodeSet,
    /// Nodes mutated outside the protocol this step (faults,
    /// `link_down`, manual corruption): unconditionally counted as
    /// changed even if the per-node pass sees no further delta.
    pub forced_changed: NodeSet,
    /// Nodes whose state changed during the last executed step.
    pub changed: Vec<NodeId>,
    /// Scratch: pre-step snapshot of the node being processed.
    pub scratch_state: Option<P::State>,
}

impl<P: Protocol> NodeTable<P> {
    pub fn new(protocol: &P, topo: &Topology, states: Vec<P::State>) -> Self {
        let n = states.len();
        let beacons: Vec<P::Beacon> = states
            .iter()
            .enumerate()
            .map(|(i, s)| protocol.beacon(NodeId::new(i as u32), s))
            .collect();
        let heard = topo.nodes().map(|p| vec![NEVER; topo.degree(p)]).collect();
        let mut table = NodeTable {
            states,
            beacons,
            epoch: vec![0; n],
            heard,
            beacon_stale: NodeSet::new(n),
            update_dirty: NodeSet::new(n),
            send_pending: NodeSet::new(n),
            forced_changed: NodeSet::new(n),
            changed: Vec::new(),
            scratch_state: None,
        };
        // Cold start: everything is dirty — nobody has heard anyone.
        table.update_dirty.insert_all();
        table.send_pending.insert_all();
        table
    }

    /// Marks `p` for rescheduling: its state may have changed outside
    /// the regular pass (fault, manual mutation, link event).
    pub fn mark_node(&mut self, p: NodeId) {
        self.update_dirty.insert(p);
        self.beacon_stale.insert(p);
        self.forced_changed.insert(p);
    }

    /// Conservative full invalidation: used on wholesale topology swaps
    /// and when switching scheduling modes.
    pub fn mark_all(&mut self, topo: &Topology) {
        self.update_dirty.insert_all();
        self.beacon_stale.insert_all();
        self.send_pending.insert_all();
        for r in topo.nodes() {
            let row = &mut self.heard[r.index()];
            row.clear();
            row.resize(topo.degree(r), NEVER);
        }
    }

    /// Re-aligns `r`'s reception row after its adjacency list changed,
    /// conservatively forgetting what it had heard: every current
    /// neighbor is forced to re-broadcast.
    pub fn reset_heard_row(&mut self, r: NodeId, topo: &Topology) {
        let row = &mut self.heard[r.index()];
        row.clear();
        row.resize(topo.degree(r), NEVER);
        for &q in topo.neighbors(r) {
            self.send_pending.insert(q);
        }
        // r's own beacon must reach any new neighbor too.
        self.send_pending.insert(r);
    }
}
