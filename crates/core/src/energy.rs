//! Energy-aware clustering — the paper's last future-work item
//! ("we also want to consider energy constraints in the stabilization
//! algorithm and we are investigating energy-efficient organization
//! algorithms").
//!
//! Cluster-heads do extra work (they name the cluster, synchronize it,
//! anchor hierarchical routing), so a static election drains the same
//! nodes until they die. The standard remedy is **head rotation**: make
//! remaining energy the primary election criterion, quantized into
//! bands so that small energy differences do not thrash the clustering,
//! with the paper's density as the secondary criterion inside a band.
//! Because the banded-energy key is still a total order evaluated on
//! 1-hop information, the whole self-stabilization argument carries
//! over unchanged — exactly the kind of "several clusterization
//! metrics" generalization the conclusion claims.

use mwn_graph::{NodeId, Topology};
use serde::{Deserialize, Serialize};

use crate::{keys_of, oracle_with_keys, Clustering, Density, Key, OracleConfig};

/// Battery and duty-cycle parameters of the energy model.
///
/// Units are abstract "energy units"; costs are per election round.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Initial battery of every node.
    pub initial: f64,
    /// Per-round cost of serving as a cluster-head.
    pub head_cost: f64,
    /// Per-round cost of being an ordinary member (idle + beacons).
    pub member_cost: f64,
    /// Number of quantization bands for the election (≥ 1). More bands
    /// rotate more eagerly; fewer bands are more stable.
    pub bands: u32,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            initial: 100.0,
            head_cost: 1.0,
            member_cost: 0.1,
            bands: 10,
        }
    }
}

impl EnergyModel {
    /// The quantization band of a battery level: 0 = (almost) empty,
    /// `bands - 1` = full.
    pub fn band_of(&self, battery: f64) -> u32 {
        if battery <= 0.0 {
            return 0;
        }
        let frac = (battery / self.initial).clamp(0.0, 1.0);
        ((frac * f64::from(self.bands)).ceil() as u32)
            .saturating_sub(1)
            .min(self.bands - 1)
    }

    /// Validates the model.
    ///
    /// # Panics
    ///
    /// Panics on non-positive initial energy, negative costs, or zero
    /// bands.
    pub fn validate(&self) {
        assert!(self.initial > 0.0, "initial energy must be positive");
        assert!(
            self.head_cost >= 0.0 && self.member_cost >= 0.0,
            "costs must be non-negative"
        );
        assert!(
            self.head_cost >= self.member_cost,
            "heads must cost at least as much as members"
        );
        assert!(self.bands >= 1, "at least one energy band");
    }
}

/// Computes the energy-aware clustering: the configured election with
/// the quantized battery band as the *primary* criterion.
///
/// Implementation note: a key's metric field is an exact rational
/// [`Density`]; the banded key scales the density into the band —
/// `metric' = band · (δ³ + 1) + d_p` — which is lexicographic because
/// the paper bounds the density below `δ³` (proof of Lemma 2).
pub fn energy_aware_clustering(
    topo: &Topology,
    batteries: &[f64],
    model: &EnergyModel,
    config: &OracleConfig,
) -> Clustering {
    model.validate();
    assert_eq!(batteries.len(), topo.len(), "one battery per node");
    let delta = topo.max_degree().max(1) as u32;
    // d_p < δ³ (the paper's bound); scale each band past that.
    let band_stride = delta
        .saturating_mul(delta)
        .saturating_mul(delta)
        .saturating_add(1);
    let base = keys_of(topo, config);
    let keys: Vec<Key> = base
        .into_iter()
        .enumerate()
        .map(|(i, k)| {
            let band = model.band_of(batteries[i]);
            // links/degree + band·stride == (links + band·stride·degree)/degree
            let d = k.density;
            let links = d.links().saturating_add(
                band.saturating_mul(band_stride)
                    .saturating_mul(d.degree().max(1)),
            );
            Key::new(
                Density::ratio(links, d.degree().max(1)),
                k.is_head,
                k.tiebreak,
                k.id,
            )
        })
        .collect();
    oracle_with_keys(topo, &keys, config.order, config.rule)
}

/// One tick of battery bookkeeping: charges every node its role cost.
/// Batteries floor at zero.
pub fn charge_round(batteries: &mut [f64], clustering: &Clustering, model: &EnergyModel) {
    for (i, b) in batteries.iter_mut().enumerate() {
        let cost = if clustering.is_head(NodeId::new(i as u32)) {
            model.head_cost
        } else {
            model.member_cost
        };
        *b = (*b - cost).max(0.0);
    }
}

/// Outcome of a rotation simulation (see [`simulate_rotation`]).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RotationOutcome {
    /// Rounds simulated.
    pub rounds: u64,
    /// Minimum battery across nodes at the end.
    pub min_battery: f64,
    /// Mean battery at the end.
    pub mean_battery: f64,
    /// Rounds until the first node hit an empty battery (`None` if
    /// everyone survived).
    pub first_death: Option<u64>,
    /// Number of distinct nodes that served as head at least once.
    pub distinct_heads: usize,
}

/// Simulates `rounds` election+drain rounds and reports longevity
/// statistics. With `rotate = false` the plain (energy-blind) election
/// runs instead — the baseline the rotation is compared against.
pub fn simulate_rotation(
    topo: &Topology,
    model: &EnergyModel,
    config: &OracleConfig,
    rounds: u64,
    rotate: bool,
) -> RotationOutcome {
    model.validate();
    let mut batteries = vec![model.initial; topo.len()];
    let mut served = vec![false; topo.len()];
    let mut first_death = None;
    let static_clustering = crate::oracle(topo, config);
    for round in 0..rounds {
        let clustering = if rotate {
            energy_aware_clustering(topo, &batteries, model, config)
        } else {
            static_clustering.clone()
        };
        for h in clustering.heads() {
            served[h.index()] = true;
        }
        charge_round(&mut batteries, &clustering, model);
        if first_death.is_none() && batteries.iter().any(|&b| b <= 0.0) {
            first_death = Some(round + 1);
        }
    }
    let min_battery = batteries.iter().copied().fold(f64::INFINITY, f64::min);
    let mean_battery = batteries.iter().sum::<f64>() / batteries.len().max(1) as f64;
    RotationOutcome {
        rounds,
        min_battery,
        mean_battery,
        first_death,
        distinct_heads: served.iter().filter(|&&s| s).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_graph::builders;
    use rand::SeedableRng;

    fn field(seed: u64) -> Topology {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        builders::uniform(150, 0.12, &mut rng)
    }

    #[test]
    fn bands_quantize_sanely() {
        let model = EnergyModel::default();
        assert_eq!(model.band_of(100.0), 9);
        assert_eq!(model.band_of(95.0), 9);
        assert_eq!(model.band_of(50.0), 4);
        assert_eq!(model.band_of(0.5), 0);
        assert_eq!(model.band_of(0.0), 0);
        assert_eq!(model.band_of(-3.0), 0);
        assert_eq!(model.band_of(1e9), 9);
    }

    #[test]
    fn full_batteries_reproduce_the_plain_clustering() {
        let topo = field(1);
        let batteries = vec![100.0; topo.len()];
        let energy = energy_aware_clustering(
            &topo,
            &batteries,
            &EnergyModel::default(),
            &OracleConfig::default(),
        );
        let plain = crate::oracle(&topo, &OracleConfig::default());
        assert_eq!(energy, plain, "equal bands ⇒ density decides, as before");
    }

    #[test]
    fn drained_head_loses_to_charged_neighbor() {
        // Two linked nodes: node 0 wins the plain election (smaller
        // id, equal density) but is nearly empty — node 1 must take
        // over.
        let topo = Topology::from_edges(2, &[(0, 1)]).unwrap();
        let model = EnergyModel::default();
        let plain = crate::oracle(&topo, &OracleConfig::default());
        assert!(plain.is_head(NodeId::new(0)));
        let c = energy_aware_clustering(&topo, &[2.0, 100.0], &model, &OracleConfig::default());
        assert!(c.is_head(NodeId::new(1)));
        assert!(!c.is_head(NodeId::new(0)));
    }

    #[test]
    fn band_dominates_density() {
        // A dense-neighborhood node with an empty battery must lose to
        // a sparse node with a full one.
        let topo = builders::star(6); // center 0 has the top density
        let mut batteries = vec![100.0; 6];
        batteries[0] = 1.0;
        let c = energy_aware_clustering(
            &topo,
            &batteries,
            &EnergyModel::default(),
            &OracleConfig::default(),
        );
        assert!(!c.is_head(NodeId::new(0)), "drained center must abdicate");
    }

    #[test]
    fn charge_round_bills_heads_more() {
        let topo = builders::star(4);
        let clustering = crate::oracle(&topo, &OracleConfig::default());
        let model = EnergyModel::default();
        let mut batteries = vec![100.0; 4];
        charge_round(&mut batteries, &clustering, &model);
        assert_eq!(batteries[0], 99.0); // head
        assert_eq!(batteries[1], 99.9); // member
    }

    #[test]
    fn rotation_spreads_the_load() {
        let topo = field(2);
        let model = EnergyModel {
            initial: 50.0,
            head_cost: 1.0,
            member_cost: 0.01,
            bands: 25,
        };
        let rotating = simulate_rotation(&topo, &model, &OracleConfig::default(), 400, true);
        let fixed = simulate_rotation(&topo, &model, &OracleConfig::default(), 400, false);
        assert!(
            rotating.distinct_heads > fixed.distinct_heads,
            "rotation: {} heads vs static {}",
            rotating.distinct_heads,
            fixed.distinct_heads
        );
        // A deployment can contain a singleton cluster whose head has
        // nobody to rotate with — it drains identically in both modes,
        // so the weakest-node comparisons are "never worse", strictly
        // better only when every cluster has a rotation pool.
        assert!(
            rotating.min_battery >= fixed.min_battery,
            "rotation never leaves the weakest node worse off: {} vs {}",
            rotating.min_battery,
            fixed.min_battery
        );
        // Static heads drain to empty within 50 rounds; rotation never
        // hastens the first death.
        assert_eq!(fixed.first_death, Some(50));
        match rotating.first_death {
            None => {}
            Some(t) => assert!(t >= 50, "first death at {t}"),
        }
    }

    #[test]
    fn batteries_never_go_negative() {
        let topo = builders::complete(5);
        let model = EnergyModel {
            initial: 1.0,
            head_cost: 10.0,
            member_cost: 0.5,
            bands: 4,
        };
        let outcome = simulate_rotation(&topo, &model, &OracleConfig::default(), 20, true);
        assert!(outcome.min_battery >= 0.0);
        assert_eq!(outcome.first_death, Some(1));
    }

    #[test]
    #[should_panic(expected = "one battery per node")]
    fn battery_length_is_validated() {
        let topo = builders::line(3);
        let _ = energy_aware_clustering(
            &topo,
            &[1.0],
            &EnergyModel::default(),
            &OracleConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "heads must cost at least as much")]
    fn inverted_costs_rejected() {
        let model = EnergyModel {
            head_cost: 0.1,
            member_cost: 1.0,
            ..EnergyModel::default()
        };
        model.validate();
    }
}
