//! Property-based tests: the paper's theorems and structural claims,
//! checked on randomized topologies and adversarial states.

use mwn_cluster::{
    check_legitimate, density_from_tables, density_of, extract_clustering, extract_dag_ids,
    is_locally_unique, keys_of, oracle, ClusterConfig, DagConfig, DagProtocol, DagVariant, Density,
    DensityCluster, HeadRule, Key, MetricKind, NameSpace, OracleConfig, OrderKind,
};
use mwn_graph::{builders, NodeId, Topology};
use mwn_radio::BernoulliLoss;
use mwn_sim::{Scenario, StopWhen};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn unit_disk(n: usize, r_percent: u32, seed: u64) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    builders::uniform(n, f64::from(r_percent) / 100.0, &mut rng)
}

fn topo_strategy() -> impl Strategy<Value = Topology> {
    (5usize..60, 8u32..30, 0u64..u64::MAX).prop_map(|(n, r, s)| unit_disk(n, r, s))
}

fn key_strategy() -> impl Strategy<Value = Key> {
    (0u32..20, 1u32..8, any::<bool>(), 0u32..12, 0u32..40).prop_map(
        |(links, deg, is_head, tb, id)| {
            Key::new(Density::ratio(links, deg), is_head, tb, NodeId::new(id))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ≺ is a strict total order on keys with distinct unique ids.
    #[test]
    fn order_is_strict_and_total(
        mut keys in proptest::collection::vec(key_strategy(), 2..8),
    ) {
        // Force distinct unique ids.
        for (i, k) in keys.iter_mut().enumerate() {
            k.id = NodeId::new(i as u32);
        }
        for order in [OrderKind::Basic, OrderKind::Stable] {
            for a in &keys {
                prop_assert!(!a.precedes(a, order));
                for b in &keys {
                    if a.id != b.id {
                        prop_assert!(a.precedes(b, order) ^ b.precedes(a, order));
                    }
                    for c in &keys {
                        if a.precedes(b, order) && b.precedes(c, order) {
                            prop_assert!(a.precedes(c, order));
                        }
                    }
                }
            }
        }
    }

    /// Rational densities order exactly like their float values (when
    /// the floats are distinguishable).
    #[test]
    fn density_matches_float_order(
        a in (0u32..1000, 1u32..100),
        b in (0u32..1000, 1u32..100),
    ) {
        let da = Density::ratio(a.0, a.1);
        let db = Density::ratio(b.0, b.1);
        let fa = da.as_f64();
        let fb = db.as_f64();
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(da < db, fa < fb);
        } else {
            prop_assert_eq!(da, db);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Definition 1 computed from 2-hop tables equals the full-known
    /// ledge value, on any topology.
    #[test]
    fn distributed_density_equals_oracle_density(topo in topo_strategy()) {
        for p in topo.nodes() {
            let neighbors = topo.neighbors(p).to_vec();
            let tables: Vec<&[NodeId]> =
                neighbors.iter().map(|&q| topo.neighbors(q)).collect();
            prop_assert_eq!(
                density_from_tables(p, &neighbors, &tables),
                density_of(&topo, p)
            );
        }
    }

    /// Basic rule: cluster-heads are never adjacent; fusion rule:
    /// never within two hops. Clusters partition the node set and all
    /// parent chains climb ≺ to their head.
    #[test]
    fn oracle_structural_invariants(topo in topo_strategy()) {
        for rule in [HeadRule::Basic, HeadRule::Fusion] {
            let cfg = OracleConfig { rule, ..OracleConfig::default() };
            let c = oracle(&topo, &cfg);
            let keys = keys_of(&topo, &cfg);
            for h in c.heads() {
                let exclusion = match rule {
                    HeadRule::Basic => topo.neighbors(h).to_vec(),
                    HeadRule::Fusion => topo.two_hop_neighborhood(h),
                };
                for q in exclusion {
                    prop_assert!(!c.is_head(q), "{rule:?}: heads {h} and {q} too close");
                }
            }
            for p in topo.nodes() {
                prop_assert!(c.is_head(c.head(p)));
                prop_assert!(c.depth_in_hops(&topo, p).is_some());
                let f = c.parent(p);
                if f != p {
                    prop_assert!(keys[p.index()].precedes(&keys[f.index()], cfg.order));
                }
            }
        }
    }

    /// The distributed protocol stabilizes to exactly the oracle
    /// clustering (basic order/rule) on a perfect medium.
    #[test]
    fn distributed_equals_oracle(topo in topo_strategy(), seed in 0u64..1000) {
        let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
            .topology(topo)
            .seed(seed)
            .build()
            .expect("valid scenario");
        net.run_to(&StopWhen::stable_for(3).within(400)).expect_stable("stabilizes");
        let got = extract_clustering(net.states()).expect("clean");
        let want = oracle(net.topology(), &OracleConfig::default());
        prop_assert_eq!(got, want);
        prop_assert_eq!(check_legitimate(&net), Ok(()));
    }

    /// Self-stabilization (convergence + closure): from arbitrary
    /// corrupted state the system returns to the same legitimate
    /// configuration and stays there.
    #[test]
    fn corruption_reconverges_to_fixpoint(topo in topo_strategy(), seed in 0u64..1000) {
        let mut net = Scenario::new(DensityCluster::new(ClusterConfig::default()))
            .topology(topo)
            .seed(seed)
            .build()
            .expect("valid scenario");
        net.run(30);
        let fixpoint = extract_clustering(net.states()).expect("stabilized");
        net.corrupt_all();
        net.run_to(&StopWhen::stable_for(3).within(600)).expect_stable("reconverges");
        prop_assert_eq!(extract_clustering(net.states()).expect("clean"), fixpoint.clone());
        // Closure: keep running, nothing moves.
        net.run(25);
        prop_assert_eq!(extract_clustering(net.states()).expect("clean"), fixpoint);
    }

    /// Theorem 1: N1 stabilizes to locally unique names inside γ, from
    /// cold start and from corrupted state, for both variants.
    #[test]
    fn n1_always_stabilizes(
        topo in topo_strategy(),
        seed in 0u64..1000,
        randomized in any::<bool>(),
    ) {
        let variant = if randomized {
            DagVariant::Randomized
        } else {
            DagVariant::SmallestIdRedraws
        };
        let gamma = NameSpace::delta_squared(topo.max_degree().max(1));
        let mut net = Scenario::new(DagProtocol::new(gamma, variant, 4))
            .topology(topo)
            .seed(seed)
            .build()
            .expect("valid scenario");
        let stop = StopWhen::stable_for(4).within(800);
        net.run_to(&stop).expect_stable("N1 converges");
        net.corrupt_all();
        net.run_to(&stop).expect_stable("N1 reconverges");
        let names: Vec<u32> = net.states().iter().map(|s| s.dag_id).collect();
        prop_assert!(is_locally_unique(net.topology(), &names));
        prop_assert!(names.iter().all(|&x| gamma.contains(x)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Convergence holds under the worst medium consistent with the
    /// paper's hypothesis (Bernoulli loss at exactly τ).
    #[test]
    fn stabilizes_under_bernoulli_loss(
        seed in 0u64..1000,
        tau_percent in 30u32..90,
    ) {
        let topo = unit_disk(25, 20, seed);
        let tau = f64::from(tau_percent) / 100.0;
        // The TTL must make false cache expiries negligible:
        // (1-τ)^ttl ≤ 1e-7, else neighbor sets flap forever.
        let cache_ttl = ((1e-7f64.ln() / (1.0 - tau).ln()).ceil() as u64).max(4) + 2;
        let config = ClusterConfig { cache_ttl, ..ClusterConfig::default() };
        let mut net = Scenario::new(DensityCluster::new(config))
            .medium(BernoulliLoss::new(tau))
            .topology(topo)
            .seed(seed)
            .build()
            .expect("valid scenario");
        // With losses the *caches* keep churning; the quiet window must
        // outlast the worst plausible loss streak.
        net.run_to(&StopWhen::stable_for(cache_ttl + 10).within(20_000))
            .expect_stable("stabilizes");
        let got = extract_clustering(net.states()).expect("clean");
        let want = oracle(net.topology(), &OracleConfig::default());
        prop_assert_eq!(got, want);
    }

    /// The full protocol with DAG renaming stabilizes and matches the
    /// oracle under the stabilized names (fusion + DAG — the most
    /// feature-complete configuration).
    #[test]
    fn dag_plus_fusion_matches_oracle(seed in 0u64..1000) {
        let topo = unit_disk(40, 18, seed);
        let gamma = NameSpace::delta_squared(topo.max_degree().max(1));
        let config = ClusterConfig {
            rule: HeadRule::Fusion,
            dag: Some(DagConfig { gamma, variant: DagVariant::Randomized }),
            ..ClusterConfig::default()
        };
        prop_assume!(config.validate_for(&topo).is_ok());
        let mut net = Scenario::new(DensityCluster::new(config))
            .topology(topo)
            .seed(seed)
            .build()
            .expect("valid scenario");
        net.run_to(&StopWhen::stable_for(5).within(1000))
            .expect_stable("stabilizes");
        let got = extract_clustering(net.states()).expect("clean");
        let want = oracle(
            net.topology(),
            &OracleConfig {
                rule: HeadRule::Fusion,
                tiebreak: Some(extract_dag_ids(net.states())),
                ..OracleConfig::default()
            },
        );
        prop_assert_eq!(got.heads(), want.heads());
    }

    /// The degree metric (conclusion's suggestion) also stabilizes to
    /// its oracle.
    #[test]
    fn degree_metric_also_stabilizes(seed in 0u64..1000) {
        let topo = unit_disk(35, 20, seed);
        let config = ClusterConfig {
            metric: MetricKind::Degree,
            ..ClusterConfig::default()
        };
        let mut net = Scenario::new(DensityCluster::new(config))
            .topology(topo)
            .seed(seed)
            .build()
            .expect("valid scenario");
        net.run_to(&StopWhen::stable_for(3).within(400)).expect_stable("stabilizes");
        let got = extract_clustering(net.states()).expect("clean");
        let want = oracle(
            net.topology(),
            &OracleConfig { metric: MetricKind::Degree, ..OracleConfig::default() },
        );
        prop_assert_eq!(got, want);
    }
}
