/// Detects when a projected system configuration has been stable for a
/// required number of consecutive observations.
///
/// Feed it one projection of the global state per step; it reports when
/// the projection has not changed for `quiet` observations in a row and
/// remembers the step of the last change — the measured stabilization
/// time.
///
/// # Examples
///
/// ```
/// use mwn_sim::StabilityTracker;
///
/// let mut t = StabilityTracker::new(2);
/// assert!(!t.observe(0, vec![1, 1]));
/// assert!(!t.observe(1, vec![1, 2])); // changed
/// assert!(!t.observe(2, vec![1, 2])); // stable ×1
/// assert!(t.observe(3, vec![1, 2]));  // stable ×2 → done
/// assert_eq!(t.last_change(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct StabilityTracker<K> {
    quiet: u64,
    last: Option<Vec<K>>,
    last_change: u64,
    stable_for: u64,
    /// Whether any observation has been recorded (snapshot or flag).
    primed: bool,
}

impl<K: PartialEq> StabilityTracker<K> {
    /// Creates a tracker requiring `quiet` consecutive unchanged
    /// observations (at least 1).
    pub fn new(quiet: u64) -> Self {
        StabilityTracker {
            quiet: quiet.max(1),
            last: None,
            last_change: 0,
            stable_for: 0,
            primed: false,
        }
    }

    /// Records the projection at `now`; returns `true` once the
    /// projection has been unchanged for the required streak.
    pub fn observe(&mut self, now: u64, projection: Vec<K>) -> bool {
        self.primed = true;
        match &self.last {
            Some(prev) if *prev == projection => {
                self.stable_for += 1;
            }
            _ => {
                self.stable_for = 0;
                self.last_change = now;
                self.last = Some(projection);
            }
        }
        self.stable_for >= self.quiet
    }

    /// Records "the projection did / did not change at `now`" without
    /// materializing the projection at all — the activity-driven
    /// driver's O(changed-nodes) path. Semantically identical to
    /// feeding [`StabilityTracker::observe_slice`] the full projection:
    /// the first observation counts as a change (there is nothing to be
    /// equal to yet), subsequent quiet observations extend the streak.
    pub fn observe_flag(&mut self, now: u64, changed: bool) -> bool {
        let first = !self.primed;
        self.primed = true;
        if first || changed {
            self.stable_for = 0;
            self.last_change = now;
        } else {
            self.stable_for += 1;
        }
        self.stable_for >= self.quiet
    }

    /// Records the projection at `now` without taking ownership; the
    /// slice is only cloned when it differs from the previous
    /// observation, so steady-state steps allocate nothing. Returns
    /// `true` once the projection has been unchanged for the required
    /// streak.
    pub fn observe_slice(&mut self, now: u64, projection: &[K]) -> bool
    where
        K: Clone,
    {
        self.primed = true;
        match &mut self.last {
            Some(prev) if prev.as_slice() == projection => {
                self.stable_for += 1;
            }
            Some(prev) => {
                self.stable_for = 0;
                self.last_change = now;
                prev.clear();
                prev.extend_from_slice(projection);
            }
            None => {
                self.last = Some(projection.to_vec());
                self.last_change = now;
                self.stable_for = 0;
            }
        }
        self.stable_for >= self.quiet
    }

    /// The time of the most recent change (the stabilization time once
    /// [`StabilityTracker::observe`] has returned `true`).
    pub fn last_change(&self) -> u64 {
        self.last_change
    }

    /// How many consecutive observations have been unchanged.
    pub fn stable_streak(&self) -> u64 {
        self.stable_for
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_stability_counts_from_first_observation() {
        let mut t = StabilityTracker::new(3);
        assert!(!t.observe(0, vec![7]));
        assert!(!t.observe(1, vec![7]));
        assert!(!t.observe(2, vec![7]));
        assert!(t.observe(3, vec![7]));
        assert_eq!(t.last_change(), 0);
    }

    #[test]
    fn change_resets_the_streak() {
        let mut t = StabilityTracker::new(2);
        t.observe(0, vec![1]);
        t.observe(1, vec![1]);
        assert_eq!(t.stable_streak(), 1);
        t.observe(2, vec![2]);
        assert_eq!(t.stable_streak(), 0);
        assert_eq!(t.last_change(), 2);
        assert!(!t.observe(3, vec![2]));
        assert!(t.observe(4, vec![2]));
    }

    #[test]
    fn quiet_zero_is_clamped_to_one() {
        let mut t = StabilityTracker::new(0);
        assert!(!t.observe(0, vec![1]));
        assert!(t.observe(1, vec![1]));
    }

    #[test]
    fn flag_mode_matches_snapshot_mode() {
        // The same change pattern through both APIs must produce the
        // same satisfaction step and last-change time.
        let series = [vec![1], vec![2], vec![2], vec![3], vec![3], vec![3]];
        let mut snap = StabilityTracker::new(2);
        let mut flag: StabilityTracker<i32> = StabilityTracker::new(2);
        let mut prev: Option<Vec<i32>> = None;
        for (now, s) in series.iter().enumerate() {
            let changed = prev.as_ref() != Some(s);
            prev = Some(s.clone());
            assert_eq!(
                snap.observe_slice(now as u64, s),
                flag.observe_flag(now as u64, changed),
                "diverged at {now}"
            );
            assert_eq!(snap.last_change(), flag.last_change());
            assert_eq!(snap.stable_streak(), flag.stable_streak());
        }
    }

    #[test]
    fn flag_mode_continues_a_snapshot_observation() {
        // run_to seeds the tracker with one full snapshot, then feeds
        // flags: the streak must carry across the switch.
        let mut t = StabilityTracker::new(2);
        assert!(!t.observe_slice(5, &[7, 7]));
        assert!(!t.observe_flag(6, false));
        assert!(t.observe_flag(7, false));
        assert_eq!(t.last_change(), 5);
    }
}
