use std::fmt;

use serde::{Deserialize, Serialize};

/// A fixed-bin-width histogram over `f64` samples.
///
/// Used to inspect distributions behind the paper's averages (e.g. the
/// distribution of DAG-construction steps behind Table 3, or of cluster
/// sizes behind Table 4).
///
/// # Examples
///
/// ```
/// use mwn_metrics::Histogram;
///
/// let mut h = Histogram::new(0.0, 1.0, 10);
/// h.push(0.05);
/// h.push(0.15);
/// h.push(0.15);
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(1), 2);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram spanning `[lo, hi)` with `bins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds a sample; values outside `[lo, hi)` land in the
    /// under/overflow counters.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.bins.len()
    }

    /// `[low, high)` bounds of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }

    /// Total samples including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Index of the most populated bin, or `None` if all bins are empty.
    pub fn mode_bin(&self) -> Option<usize> {
        let max = *self.bins.iter().max()?;
        if max == 0 {
            return None;
        }
        self.bins.iter().position(|&c| c == max)
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        for (i, &count) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_range(i);
            let width = (count * 40 / peak) as usize;
            writeln!(f, "[{lo:8.3},{hi:8.3}) {count:8} {}", "#".repeat(width))?;
        }
        if self.underflow > 0 || self.overflow > 0 {
            writeln!(
                f,
                "underflow: {}, overflow: {}",
                self.underflow, self.overflow
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.99] {
            h.push(x);
        }
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(4), 1);
    }

    #[test]
    fn out_of_range_goes_to_flows() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(-0.1);
        h.push(1.0);
        h.push(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        assert_eq!(h.mode_bin(), None);
        h.push(1.5);
        h.push(1.6);
        h.push(0.5);
        assert_eq!(h.mode_bin(), Some(1));
    }

    #[test]
    fn bin_ranges_tile_the_domain() {
        let h = Histogram::new(-1.0, 1.0, 4);
        assert_eq!(h.bin_range(0), (-1.0, -0.5));
        assert_eq!(h.bin_range(3), (0.5, 1.0));
    }

    #[test]
    fn display_renders_bars() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(0.1);
        h.push(0.1);
        h.push(0.9);
        let s = h.to_string();
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
