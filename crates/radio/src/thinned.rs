use mwn_graph::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::Rng;

use crate::{Delivery, Medium};

/// Composes an inner medium with independent per-copy Bernoulli
/// thinning: a frame must survive the inner medium (e.g. CSMA
/// collisions) *and* an extra coin flip (e.g. ambient interference).
///
/// If the inner medium guarantees per-frame success ≥ τ₁ and the
/// thinning keeps copies with probability τ₂, the composition
/// guarantees ≥ τ₁·τ₂ > 0 — still within the paper's hypothesis.
///
/// # Examples
///
/// ```
/// use mwn_radio::{SlottedCsma, Thinned};
///
/// let medium = Thinned::new(SlottedCsma::new(16), 0.9);
/// assert_eq!(medium.survival(), 0.9);
/// ```
#[derive(Clone, Debug)]
pub struct Thinned<M> {
    inner: M,
    survival: f64,
    /// Reused inner-round buffer: whole-round thinning must not touch
    /// copies a previous append already placed in the caller's
    /// delivery, and reusing the staging area keeps `deliver_into`
    /// allocation-free in steady state.
    scratch: Delivery,
}

impl<M: Medium> Thinned<M> {
    /// Wraps `inner`, keeping each delivered copy with probability
    /// `survival`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < survival <= 1`.
    pub fn new(inner: M, survival: f64) -> Self {
        assert!(
            survival > 0.0 && survival <= 1.0,
            "survival must be in (0, 1]"
        );
        Thinned {
            inner,
            survival,
            scratch: Delivery::empty(0),
        }
    }

    /// The thinning survival probability.
    pub fn survival(&self) -> f64 {
        self.survival
    }

    /// The wrapped medium.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Unwraps the inner medium.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M: Medium> Medium for Thinned<M> {
    fn deliver_into(
        &mut self,
        topo: &Topology,
        senders: &[NodeId],
        rng: &mut StdRng,
        out: &mut Delivery,
    ) {
        // Stage the inner round separately so thinning never touches
        // copies a previous append already placed in `out`.
        let mut inner = std::mem::take(&mut self.scratch);
        inner.reset(topo.len());
        self.inner.deliver_into(topo, senders, rng, &mut inner);
        for &r in &inner.touched {
            inner.heard[r.index()].retain(|_| rng.random_bool(self.survival));
        }
        out.attempted += inner.attempted;
        for &r in &inner.touched {
            for i in 0..inner.heard[r.index()].len() {
                let s = inner.heard[r.index()][i];
                out.record(r, s);
            }
        }
        self.scratch = inner;
    }

    fn deliver_from(
        &mut self,
        topo: &Topology,
        sender: NodeId,
        rng: &mut StdRng,
        out: &mut Delivery,
    ) {
        // A single sender appends at most one copy at the tail of each
        // neighbor's heard list, so thinning can pop in place — no
        // scratch delivery, preserving the zero-alloc per-sender path.
        self.inner.deliver_from(topo, sender, rng, out);
        for &r in topo.neighbors(sender) {
            let list = &mut out.heard[r.index()];
            if list.last() == Some(&sender) && !rng.random_bool(self.survival) {
                list.pop();
                out.delivered -= 1;
                // `touched` may keep r with an empty list; consumers
                // treat it as "possibly heard", which is harmless.
            }
        }
    }

    fn independent_fates(&self) -> bool {
        self.inner.independent_fates()
    }

    fn proxyable(&self) -> bool {
        self.inner.proxyable()
    }

    fn proxy_fates(
        &self,
        topo: &Topology,
        sender: NodeId,
        rng: &mut StdRng,
        heard: &mut Vec<NodeId>,
    ) -> usize {
        // Mirrors deliver_from's draw order: the inner medium decides
        // its fates first, then one thinning coin per *delivered* copy
        // in neighbor order.
        let start = heard.len();
        let attempted = self.inner.proxy_fates(topo, sender, rng, heard);
        let mut keep = start;
        for i in start..heard.len() {
            let r = heard[i];
            if rng.random_bool(self.survival) {
                heard[keep] = r;
                keep += 1;
            }
        }
        heard.truncate(keep);
        attempted
    }

    fn name(&self) -> &'static str {
        "thinned"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{measure_tau, PerfectMedium, SlottedCsma};
    use mwn_graph::builders;
    use rand::SeedableRng;

    #[test]
    fn thinning_perfect_medium_yields_the_survival_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let topo = builders::complete(10);
        let tau = measure_tau(&mut Thinned::new(PerfectMedium, 0.6), &topo, 200, &mut rng);
        assert!((tau - 0.6).abs() < 0.03, "measured {tau}");
    }

    #[test]
    fn composition_multiplies_losses() {
        let mut rng = StdRng::seed_from_u64(2);
        let topo = builders::uniform(60, 0.15, &mut rng);
        let inner_tau = measure_tau(&mut SlottedCsma::new(8), &topo, 60, &mut rng);
        let composed_tau = measure_tau(
            &mut Thinned::new(SlottedCsma::new(8), 0.7),
            &topo,
            60,
            &mut rng,
        );
        let expected = inner_tau * 0.7;
        assert!(
            (composed_tau - expected).abs() < 0.08,
            "composed {composed_tau} vs expected ≈ {expected}"
        );
    }

    #[test]
    fn survival_one_is_transparent() {
        let mut rng = StdRng::seed_from_u64(3);
        let topo = builders::star(12);
        let senders: Vec<NodeId> = topo.nodes().collect();
        let d = Thinned::new(PerfectMedium, 1.0).deliver(&topo, &senders, &mut rng);
        assert_eq!(d.attempted, d.delivered);
    }

    #[test]
    fn accessors_roundtrip() {
        let t = Thinned::new(PerfectMedium, 0.5);
        assert_eq!(*t.inner(), PerfectMedium);
        assert_eq!(t.into_inner(), PerfectMedium);
    }

    #[test]
    #[should_panic(expected = "survival must be in (0, 1]")]
    fn zero_survival_rejected() {
        let _ = Thinned::new(PerfectMedium, 0.0);
    }
}
