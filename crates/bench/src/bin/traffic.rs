//! Traffic over the stabilized overlay: delivered throughput, latency
//! percentiles and loss-during-restabilization under a scripted fault
//! burst, at scale.
//!
//! ```sh
//! cargo run --release -p mwn-bench --bin traffic             # 1k + 10k
//! cargo run --release -p mwn-bench --bin traffic -- --quick  # 1k (CI smoke)
//! ```
//!
//! Writes `BENCH_traffic.json` next to the working directory. Exits
//! non-zero (asserts) unless every quiet run delivered 100% with
//! byte-identical sharded/serial reports and every churn run shows
//! non-zero restabilization loss.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let sizes: Vec<usize> = if quick {
        vec![1_000]
    } else {
        vec![1_000, 10_000]
    };
    let points = mwn_bench::traffic::run(&sizes, 20050610, quick);
    println!("{}", mwn_bench::traffic::render(&points));
    for p in &points {
        assert_eq!(
            p.quiet.delivered_fraction, 1.0,
            "quiet network lost packets at n = {}",
            p.nodes
        );
        assert!(p.sharded_identical, "sharded != serial at n = {}", p.nodes);
        assert!(
            p.churn.dropped_stranded > 0,
            "no restabilization loss measured at n = {}",
            p.nodes
        );
    }
    let json = mwn_bench::traffic::to_json(&points);
    let path = "BENCH_traffic.json";
    std::fs::write(path, &json).expect("write BENCH_traffic.json");
    println!("\nwrote {path}");
}
