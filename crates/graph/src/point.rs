use std::fmt;

use serde::{Deserialize, Serialize};

/// A point in the unit square (or any 2-D plane).
///
/// The paper deploys nodes "in a 1×1 square with various transmission
/// ranges R varying from 0.05 to 0.1" (Section 5). When reproducing the
/// mobility experiment we interpret the unit square as 1 km × 1 km so
/// that `R = 0.05` corresponds to a 50 m radio range and speeds given in
/// m/s convert to `1e-3` units per second.
///
/// # Examples
///
/// ```
/// use mwn_graph::Point2;
///
/// let a = Point2::new(0.0, 0.0);
/// let b = Point2::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point2) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root
    /// when only comparisons are needed, e.g. unit-disk edge tests).
    #[inline]
    pub fn distance_squared(self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation from `self` towards `other`; `t = 0` yields
    /// `self`, `t = 1` yields `other`.
    #[inline]
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        Point2::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Returns `true` when the point lies inside the closed unit square.
    #[inline]
    pub fn in_unit_square(self) -> bool {
        (0.0..=1.0).contains(&self.x) && (0.0..=1.0).contains(&self.y)
    }

    /// Clamps both coordinates into the closed unit square.
    #[inline]
    pub fn clamp_unit_square(self) -> Point2 {
        Point2::new(self.x.clamp(0.0, 1.0), self.y.clamp(0.0, 1.0))
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point2::new(0.25, 0.5);
        let b = Point2::new(0.75, 0.1);
        assert!((a.distance(b) - b.distance(a)).abs() < 1e-12);
    }

    #[test]
    fn distance_squared_matches_distance() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 1.0);
        assert!((a.distance(b).powi(2) - a.distance_squared(b)).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point2::new(1.0, 2.0));
    }

    #[test]
    fn unit_square_membership() {
        assert!(Point2::new(0.0, 1.0).in_unit_square());
        assert!(!Point2::new(-0.01, 0.5).in_unit_square());
        assert_eq!(
            Point2::new(-0.5, 1.5).clamp_unit_square(),
            Point2::new(0.0, 1.0)
        );
    }
}
