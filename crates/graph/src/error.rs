use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors produced while constructing or editing a [`crate::Topology`].
///
/// # Examples
///
/// ```
/// use mwn_graph::{GraphError, Topology};
///
/// let err = Topology::from_edges(2, &[(0, 5)]).unwrap_err();
/// assert!(matches!(err, GraphError::NodeOutOfRange { .. }));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphError {
    /// An edge referenced a node index outside `0..n`.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The number of nodes in the graph.
        len: usize,
    },
    /// An edge connected a node to itself; the paper's model has
    /// `p ∉ N_p`, so self-loops are rejected.
    SelfLoop {
        /// The node with the self-loop.
        node: NodeId,
    },
    /// A non-positive or non-finite radio range was supplied.
    InvalidRadius {
        /// The rejected radius value.
        radius: f64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range for graph of {len} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} (the model requires p ∉ N_p)")
            }
            GraphError::InvalidRadius { radius } => {
                write!(
                    f,
                    "invalid radio range {radius}; must be finite and positive"
                )
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cause() {
        let err = GraphError::NodeOutOfRange {
            node: NodeId::new(9),
            len: 4,
        };
        assert!(err.to_string().contains("out of range"));
        let err = GraphError::SelfLoop {
            node: NodeId::new(1),
        };
        assert!(err.to_string().contains("self-loop"));
        let err = GraphError::InvalidRadius { radius: -1.0 };
        assert!(err.to_string().contains("invalid radio range"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<GraphError>();
    }
}
