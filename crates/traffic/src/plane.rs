//! The traffic plane: columnar packet state, bounded per-node FIFO
//! queues, and a batch forwarding pass sharded over
//! [`mwn_sim::run_pooled`].
//!
//! # Execution model
//!
//! One [`TrafficPlane::on_step`] call advances the data plane by one
//! logical step, in three sub-phases:
//!
//! 1. **inject** — every active flow feeds up to `inject_rate` packets
//!    into its source's queue (full queues defer, never drop, at the
//!    source);
//! 2. **resolve** — pending `(node, dst)` next-hop lookups are answered
//!    from the supplied [`RoutingView`] (one full-route resolution
//!    seeds the cache for every node along the path);
//! 3. **forward** — each node serves up to `service_rate` packets from
//!    its queue head: deliver when the next hop is the destination,
//!    forward otherwise, and stop (head-of-line) when the next hop is
//!    unknown or its link is gone *right now* — every traversal
//!    re-checks [`Topology::has_edge`] at the forwarding instant.
//!
//! # Determinism
//!
//! The forward pass runs in two phases so it can use the shared worker
//! pool without losing the workspace's sharded ≡ serial discipline:
//! workers get read-only access to the frozen queues/cache/topology and
//! emit per-node verdicts; a single-threaded merge then applies pops,
//! pushes, capacity checks and drop accounting in ascending node
//! order. Each node's verdicts depend only on its own queue plus the
//! frozen shared state, so the shard count — `Auto`, forced via
//! [`TrafficPlane::set_shards`] or the `MWN_FORCE_SHARDS` environment
//! variable — cannot leak into any observable outcome.
//!
//! # Drop taxonomy
//!
//! * **overflow** — next hop's queue was full at merge time
//!   (congestion);
//! * **stranded** — TTL expired while the packet had no usable next
//!   hop (unknown route or broken link): this is the
//!   *loss-during-restabilization* the benches report;
//! * **expired** — TTL expired while a usable next hop existed
//!   (starved by congestion, not by the control plane).

use std::collections::{BTreeSet, HashMap, VecDeque};

use mwn_cluster::RoutingView;
use mwn_graph::{NodeId, Topology};
use mwn_metrics::{LatencyHistogram, RunningStats};
use mwn_sim::run_pooled;

use crate::demand::FlowSpec;
use crate::report::TrafficReport;

/// Data-plane tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct TrafficConfig {
    /// Per-node queue bound; a forward into a full queue drops the
    /// packet (overflow).
    pub queue_capacity: usize,
    /// Packets one node may move (deliver or forward) per step.
    pub service_rate: usize,
    /// Steps a packet may live after injection before it is dropped.
    pub ttl: u64,
    /// Packets each active flow injects per step.
    pub inject_rate: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            queue_capacity: 64,
            service_rate: 4,
            ttl: 64,
            inject_rate: 1,
        }
    }
}

/// Sharding policy for the forward pass, mirroring the round driver's.
#[derive(Clone, Copy, Debug)]
enum ShardMode {
    /// One shard below the activity threshold, one per core above it.
    Auto,
    /// Exactly this many shards.
    Forced(usize),
}

/// Below this many in-flight packets the auto policy stays serial —
/// pool latency would dominate.
const AUTO_SHARD_MIN_LIVE: usize = 1024;

/// Per-node verdicts from the read-only examine phase. The pop-ing
/// variants (`Deliver`/`Forward`/`Expired`) always describe a prefix
/// of the node's queue, in order; a `Stuck*` verdict is terminal for
/// its node.
#[derive(Clone, Copy, Debug)]
enum Emit {
    /// Head packet's next hop is its destination: pop and deliver.
    Deliver(u32),
    /// Pop and append to this neighbor's queue (capacity checked at
    /// merge).
    Forward(u32, u32),
    /// Pop and drop: outlived its TTL.
    Expired(u32),
    /// No cached next hop toward this destination — head-of-line
    /// blocked, request a route.
    StuckNoRoute(u32),
    /// The cached next hop's link is gone — evict the cache entry and
    /// request a route.
    StuckBroken(u32, u32),
}

/// The traffic-plane state machine; see the module docs.
///
/// # Examples
///
/// ```
/// use mwn_cluster::FlatRoutes;
/// use mwn_graph::{builders, NodeId};
/// use mwn_traffic::{FlowSpec, TrafficConfig, TrafficPlane};
///
/// let topo = builders::line(4);
/// let mut plane = TrafficPlane::new(topo.len(), TrafficConfig::default());
/// plane.add_flow(FlowSpec {
///     src: NodeId::new(0),
///     dst: NodeId::new(3),
///     packets: 5,
///     start: 0,
/// });
/// for _ in 0..20 {
///     plane.on_step(&topo, Some(&FlatRoutes));
/// }
/// assert!(plane.is_drained());
/// assert_eq!(plane.report().delivered, 5);
/// ```
#[derive(Debug)]
pub struct TrafficPlane {
    cfg: TrafficConfig,
    nodes: usize,
    // Flow table (SoA).
    flow_src: Vec<u32>,
    flow_dst: Vec<u32>,
    flow_size: Vec<u64>,
    flow_start: Vec<u64>,
    flow_injected: Vec<u64>,
    flow_delivered: Vec<u64>,
    // Packet table (SoA) with free-list recycling.
    pkt_flow: Vec<u32>,
    pkt_born: Vec<u64>,
    pkt_hops: Vec<u16>,
    free: Vec<u32>,
    live: usize,
    // Per-node bounded FIFO queues of packet ids.
    queues: Vec<VecDeque<u32>>,
    // Memoized next hop by (node, destination), plus the deterministic
    // worklist of lookups awaiting the control plane.
    next_hop: HashMap<(u32, u32), u32>,
    pending: BTreeSet<(u32, u32)>,
    // Accounting.
    steps: u64,
    injected: u64,
    delivered: u64,
    deferred: u64,
    dropped_overflow: u64,
    dropped_stranded: u64,
    dropped_expired: u64,
    latency: LatencyHistogram,
    hop_stats: RunningStats,
    max_hops: u64,
    route_resolutions: u64,
    shards: ShardMode,
    audit: Option<Vec<(u64, u32, u32)>>,
}

impl TrafficPlane {
    /// A traffic plane over `nodes` nodes. Honors the
    /// `MWN_FORCE_SHARDS` environment variable exactly like the round
    /// driver; [`TrafficPlane::set_shards`] overrides both.
    pub fn new(nodes: usize, cfg: TrafficConfig) -> Self {
        let shards = std::env::var("MWN_FORCE_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|k| ShardMode::Forced(k.max(1)))
            .unwrap_or(ShardMode::Auto);
        TrafficPlane {
            cfg,
            nodes,
            flow_src: Vec::new(),
            flow_dst: Vec::new(),
            flow_size: Vec::new(),
            flow_start: Vec::new(),
            flow_injected: Vec::new(),
            flow_delivered: Vec::new(),
            pkt_flow: Vec::new(),
            pkt_born: Vec::new(),
            pkt_hops: Vec::new(),
            free: Vec::new(),
            live: 0,
            queues: vec![VecDeque::new(); nodes],
            next_hop: HashMap::new(),
            pending: BTreeSet::new(),
            steps: 0,
            injected: 0,
            delivered: 0,
            deferred: 0,
            dropped_overflow: 0,
            dropped_stranded: 0,
            dropped_expired: 0,
            // One-step buckets up to the TTL, capped: latencies past
            // the cap land in the overflow bin, whose quantiles report
            // the exact max.
            latency: LatencyHistogram::new(
                1.0,
                (cfg.ttl.saturating_add(2) as usize).clamp(16, 4096),
            ),
            hop_stats: RunningStats::new(),
            max_hops: 0,
            route_resolutions: 0,
            shards,
            audit: None,
        }
    }

    /// Registers one flow; its `(src, dst)` route request is queued
    /// immediately so the first resolve pass can warm the cache.
    ///
    /// # Panics
    ///
    /// Panics when the endpoints coincide or are out of range.
    pub fn add_flow(&mut self, flow: FlowSpec) {
        assert!(flow.src != flow.dst, "flow endpoints must differ");
        assert!(
            flow.src.index() < self.nodes && flow.dst.index() < self.nodes,
            "flow endpoints out of range"
        );
        self.flow_src.push(flow.src.value());
        self.flow_dst.push(flow.dst.value());
        self.flow_size.push(flow.packets);
        self.flow_start.push(flow.start);
        self.flow_injected.push(0);
        self.flow_delivered.push(0);
        self.pending.insert((flow.src.value(), flow.dst.value()));
    }

    /// Registers a whole workload.
    pub fn add_flows(&mut self, flows: &[FlowSpec]) {
        for &f in flows {
            self.add_flow(f);
        }
    }

    /// Forces the forward pass to exactly `Some(k)` shards (1 = the
    /// serial path), or restores the automatic policy with `None`.
    /// Sharded and serial execution are byte-identical; this is a
    /// performance knob only.
    pub fn set_shards(&mut self, shards: Option<usize>) {
        self.shards = match shards {
            Some(k) => ShardMode::Forced(k.max(1)),
            None => ShardMode::Auto,
        };
    }

    /// Turns the forwarding audit trail on or off. While on, every
    /// edge traversal is recorded as `(step, from, to)` for
    /// [`TrafficPlane::take_audit`] — test instrumentation, off by
    /// default.
    pub fn set_audit(&mut self, on: bool) {
        self.audit = if on { Some(Vec::new()) } else { None };
    }

    /// Drains the audit trail recorded since the last call.
    pub fn take_audit(&mut self) -> Vec<(u64, NodeId, NodeId)> {
        self.audit
            .as_mut()
            .map(|log| {
                std::mem::take(log)
                    .into_iter()
                    .map(|(t, u, v)| (t, NodeId::new(u), NodeId::new(v)))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// `true` when a resolve pass has work — the caller can skip
    /// building a [`RoutingView`] (often the expensive part) when this
    /// is `false`.
    pub fn needs_routes(&self) -> bool {
        !self.pending.is_empty()
    }

    /// `true` once every flow has injected its full size and no packet
    /// is in flight.
    pub fn is_drained(&self) -> bool {
        self.live == 0
            && self
                .flow_injected
                .iter()
                .zip(&self.flow_size)
                .all(|(i, s)| i == s)
    }

    /// Packets currently queued somewhere in the network.
    pub fn in_flight(&self) -> usize {
        self.live
    }

    /// Logical steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Advances the data plane one step against the *current* topology
    /// (inject → resolve → forward, see the module docs). `view` is
    /// the control plane's answer for this step; pass `None` while the
    /// protocol is re-stabilizing and routes cannot be extracted —
    /// blocked packets then wait (and age) until a view returns.
    pub fn on_step<R: RoutingView>(&mut self, topo: &Topology, view: Option<&R>) {
        assert_eq!(topo.len(), self.nodes, "topology size changed");
        self.steps += 1;
        let now = self.steps;
        self.inject(now);
        if let Some(view) = view {
            if !self.pending.is_empty() {
                self.resolve(topo, view);
            }
        }
        self.forward(topo, now);
    }

    /// Phase 1: flows feed their source queues, in flow order.
    fn inject(&mut self, now: u64) {
        for f in 0..self.flow_src.len() {
            if now < self.flow_start[f].max(1) {
                continue;
            }
            let remaining = self.flow_size[f] - self.flow_injected[f];
            if remaining == 0 {
                continue;
            }
            let src = self.flow_src[f] as usize;
            let burst = self.cfg.inject_rate.min(remaining);
            for _ in 0..burst {
                if self.queues[src].len() >= self.cfg.queue_capacity {
                    self.deferred += 1;
                    break;
                }
                let p = self.alloc(f as u32, now);
                self.queues[src].push_back(p);
                self.injected += 1;
                self.flow_injected[f] += 1;
                self.live += 1;
            }
        }
    }

    /// Phase 2: answer pending `(node, dst)` lookups from the view.
    /// One successful full-route resolution seeds the cache for every
    /// node along the path. A destination that fails once is skipped
    /// for the rest of this pass (unreachable for one node usually
    /// means unreachable for all), and stays pending for the next.
    fn resolve<R: RoutingView>(&mut self, topo: &Topology, view: &R) {
        let keys: Vec<(u32, u32)> = self.pending.iter().copied().collect();
        let mut failed_dsts: BTreeSet<u32> = BTreeSet::new();
        for (u, dst) in keys {
            if failed_dsts.contains(&dst) {
                continue;
            }
            if self.next_hop.contains_key(&(u, dst)) {
                // Seeded by an earlier resolution in this pass.
                self.pending.remove(&(u, dst));
                continue;
            }
            match view.route(topo, NodeId::new(u), NodeId::new(dst)) {
                Some(path) => {
                    self.route_resolutions += 1;
                    for w in path.windows(2) {
                        self.next_hop.insert((w[0].value(), dst), w[1].value());
                    }
                    self.pending.remove(&(u, dst));
                }
                None => {
                    failed_dsts.insert(dst);
                }
            }
        }
    }

    /// Phase 3: the batch forwarding pass — read-only sharded examine,
    /// then a serial merge in node order.
    fn forward(&mut self, topo: &Topology, now: u64) {
        if self.live == 0 {
            return;
        }
        let shards = self.shard_count();
        let chunk = self.nodes.div_ceil(shards);

        let verdicts: Vec<Vec<(u32, Vec<Emit>)>> = {
            let queues = &self.queues;
            let next_hop = &self.next_hop;
            let pkt_flow = &self.pkt_flow;
            let pkt_born = &self.pkt_born;
            let flow_dst = &self.flow_dst;
            let cfg = self.cfg;
            run_pooled(shards, shards, move |s| {
                let lo = s * chunk;
                let hi = ((s + 1) * chunk).min(queues.len());
                let mut out = Vec::new();
                for (u, queue) in queues.iter().enumerate().take(hi).skip(lo) {
                    if queue.is_empty() {
                        continue;
                    }
                    let emits = examine_node(
                        u as u32, queue, topo, next_hop, pkt_flow, pkt_born, flow_dst, &cfg, now,
                    );
                    if !emits.is_empty() {
                        out.push((u as u32, emits));
                    }
                }
                out
            })
        };

        for (u, emits) in verdicts.into_iter().flatten() {
            self.merge_node(topo, now, u, &emits);
        }
    }

    /// Applies one node's verdicts: pops its served prefix, routes
    /// packets to their fates, and does all drop accounting.
    fn merge_node(&mut self, topo: &Topology, now: u64, u: u32, emits: &[Emit]) {
        for &e in emits {
            match e {
                Emit::Deliver(p) => {
                    let popped = self.queues[u as usize].pop_front();
                    debug_assert_eq!(popped, Some(p));
                    let f = self.pkt_flow[p as usize] as usize;
                    let dst = self.flow_dst[f];
                    let hops = u64::from(self.pkt_hops[p as usize]) + 1;
                    self.delivered += 1;
                    self.flow_delivered[f] += 1;
                    self.latency
                        .record((now - self.pkt_born[p as usize]) as f64);
                    self.hop_stats.push(hops as f64);
                    self.max_hops = self.max_hops.max(hops);
                    if let Some(log) = self.audit.as_mut() {
                        log.push((now, u, dst));
                    }
                    self.release(p);
                }
                Emit::Forward(p, v) => {
                    let popped = self.queues[u as usize].pop_front();
                    debug_assert_eq!(popped, Some(p));
                    if self.queues[v as usize].len() >= self.cfg.queue_capacity {
                        self.dropped_overflow += 1;
                        self.release(p);
                    } else {
                        self.pkt_hops[p as usize] = self.pkt_hops[p as usize].saturating_add(1);
                        self.queues[v as usize].push_back(p);
                        if let Some(log) = self.audit.as_mut() {
                            log.push((now, u, v));
                        }
                    }
                }
                Emit::Expired(p) => {
                    let popped = self.queues[u as usize].pop_front();
                    debug_assert_eq!(popped, Some(p));
                    let dst = self.flow_dst[self.pkt_flow[p as usize] as usize];
                    let usable = self
                        .next_hop
                        .get(&(u, dst))
                        .is_some_and(|&v| topo.has_edge(NodeId::new(u), NodeId::new(v)));
                    if usable {
                        self.dropped_expired += 1;
                    } else {
                        self.dropped_stranded += 1;
                    }
                    self.release(p);
                }
                Emit::StuckNoRoute(dst) => {
                    self.pending.insert((u, dst));
                }
                Emit::StuckBroken(dst, v) => {
                    debug_assert_eq!(self.next_hop.get(&(u, dst)), Some(&v));
                    self.next_hop.remove(&(u, dst));
                    self.pending.insert((u, dst));
                }
            }
        }
    }

    fn alloc(&mut self, flow: u32, now: u64) -> u32 {
        if let Some(p) = self.free.pop() {
            self.pkt_flow[p as usize] = flow;
            self.pkt_born[p as usize] = now;
            self.pkt_hops[p as usize] = 0;
            p
        } else {
            self.pkt_flow.push(flow);
            self.pkt_born.push(now);
            self.pkt_hops.push(0);
            (self.pkt_flow.len() - 1) as u32
        }
    }

    fn release(&mut self, p: u32) {
        self.free.push(p);
        self.live -= 1;
    }

    fn shard_count(&self) -> usize {
        match self.shards {
            ShardMode::Forced(k) => k.min(self.nodes.max(1)),
            ShardMode::Auto => {
                if self.live < AUTO_SHARD_MIN_LIVE {
                    1
                } else {
                    std::thread::available_parallelism()
                        .map(|c| c.get())
                        .unwrap_or(1)
                        .min(self.nodes.max(1))
                }
            }
        }
    }

    /// Snapshot of the accounting so far, as a [`TrafficReport`].
    pub fn report(&self) -> TrafficReport {
        let delivered_fraction = if self.injected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.injected as f64
        };
        TrafficReport {
            nodes: self.nodes,
            flows: self.flow_src.len(),
            steps: self.steps,
            injected: self.injected,
            delivered: self.delivered,
            in_flight: self.live as u64,
            deferred: self.deferred,
            dropped_overflow: self.dropped_overflow,
            dropped_stranded: self.dropped_stranded,
            dropped_expired: self.dropped_expired,
            delivered_fraction,
            throughput: if self.steps == 0 {
                0.0
            } else {
                self.delivered as f64 / self.steps as f64
            },
            latency_p50: self.latency.quantile(0.50),
            latency_p95: self.latency.quantile(0.95),
            latency_p99: self.latency.quantile(0.99),
            latency_mean: self.latency.mean(),
            mean_hops: self.hop_stats.mean(),
            max_hops: self.max_hops,
            loss_during_restabilization: if self.injected == 0 {
                0.0
            } else {
                self.dropped_stranded as f64 / self.injected as f64
            },
            route_resolutions: self.route_resolutions,
        }
    }
}

/// The read-only per-node examine step: serves up to `service_rate`
/// packets from the queue front, stopping at the first head-of-line
/// blockage. Pure function of the frozen inputs — this is what makes
/// the sharded pass trivially deterministic.
#[allow(clippy::too_many_arguments)]
fn examine_node(
    u: u32,
    queue: &VecDeque<u32>,
    topo: &Topology,
    next_hop: &HashMap<(u32, u32), u32>,
    pkt_flow: &[u32],
    pkt_born: &[u64],
    flow_dst: &[u32],
    cfg: &TrafficConfig,
    now: u64,
) -> Vec<Emit> {
    let mut out = Vec::new();
    let mut credits = cfg.service_rate;
    for &p in queue {
        if credits == 0 {
            break;
        }
        let dst = flow_dst[pkt_flow[p as usize] as usize];
        if now - pkt_born[p as usize] > cfg.ttl {
            // Expiry frees the slot without consuming a service credit.
            out.push(Emit::Expired(p));
            continue;
        }
        match next_hop.get(&(u, dst)) {
            None => {
                out.push(Emit::StuckNoRoute(dst));
                break;
            }
            Some(&v) => {
                if !topo.has_edge(NodeId::new(u), NodeId::new(v)) {
                    out.push(Emit::StuckBroken(dst, v));
                    break;
                }
                if v == dst {
                    out.push(Emit::Deliver(p));
                } else {
                    out.push(Emit::Forward(p, v));
                }
                credits -= 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_cluster::FlatRoutes;
    use mwn_graph::builders;

    fn line_plane(n: usize, cfg: TrafficConfig) -> (Topology, TrafficPlane) {
        let topo = builders::line(n);
        let plane = TrafficPlane::new(topo.len(), cfg);
        (topo, plane)
    }

    #[test]
    fn line_delivery_latency_equals_distance() {
        let (topo, mut plane) = line_plane(5, TrafficConfig::default());
        plane.add_flow(FlowSpec {
            src: NodeId::new(0),
            dst: NodeId::new(4),
            packets: 1,
            start: 0,
        });
        for _ in 0..10 {
            plane.on_step(&topo, Some(&FlatRoutes));
        }
        let r = plane.report();
        assert_eq!(r.delivered, 1);
        assert_eq!(r.max_hops, 4);
        // Injected (and first forwarded) at step 1, one hop per step,
        // delivered into node 4 at step 4: latency 3 steps.
        assert!((r.latency_mean - 3.0).abs() < 1e-9, "{}", r.latency_mean);
        assert!(plane.is_drained());
    }

    #[test]
    fn packets_without_routes_strand_after_ttl() {
        let cfg = TrafficConfig {
            ttl: 3,
            ..TrafficConfig::default()
        };
        let (topo, mut plane) = line_plane(3, cfg);
        plane.add_flow(FlowSpec {
            src: NodeId::new(0),
            dst: NodeId::new(2),
            packets: 2,
            start: 0,
        });
        // No view ever: routes stay pending, packets age out.
        for _ in 0..10 {
            plane.on_step::<FlatRoutes>(&topo, None);
        }
        let r = plane.report();
        assert_eq!(r.delivered, 0);
        assert_eq!(r.dropped_stranded, 2);
        assert_eq!(r.dropped_expired, 0);
        assert!(r.loss_during_restabilization > 0.0);
        assert!(plane.is_drained());
    }

    #[test]
    fn full_queue_overflows_on_forward_and_defers_at_source() {
        let cfg = TrafficConfig {
            queue_capacity: 1,
            service_rate: 1,
            inject_rate: 4,
            ..TrafficConfig::default()
        };
        let (topo, mut plane) = line_plane(4, cfg);
        plane.add_flow(FlowSpec {
            src: NodeId::new(0),
            dst: NodeId::new(3),
            packets: 8,
            start: 0,
        });
        for _ in 0..40 {
            plane.on_step(&topo, Some(&FlatRoutes));
        }
        let r = plane.report();
        // Capacity 1 forces deferrals at the source but the pipeline
        // still drains everything injected.
        assert!(r.deferred > 0, "no deferrals with capacity 1");
        assert_eq!(r.injected, 8);
        assert_eq!(r.delivered + r.dropped_overflow + r.dropped_expired, 8);
        assert!(plane.is_drained());
    }

    #[test]
    fn broken_link_evicts_cache_and_packet_waits() {
        let cfg = TrafficConfig {
            ttl: 100,
            ..TrafficConfig::default()
        };
        let (topo, mut plane) = line_plane(3, cfg);
        plane.add_flow(FlowSpec {
            src: NodeId::new(0),
            dst: NodeId::new(2),
            packets: 1,
            start: 0,
        });
        // Step 1 against the intact line: the route resolves and the
        // packet advances 0 → 1, leaving it at the relay with cached
        // next hop 2.
        plane.on_step(&topo, Some(&FlatRoutes));
        // Now sever 1–2. The cached hop is stale; forwarding must not
        // traverse the missing edge.
        let mut cut = topo.clone();
        cut.remove_edge(NodeId::new(1), NodeId::new(2));
        plane.set_audit(true);
        for _ in 0..5 {
            plane.on_step::<FlatRoutes>(&cut, None);
        }
        for (_, u, v) in plane.take_audit() {
            assert!(cut.has_edge(u, v), "traversed missing edge {u}→{v}");
        }
        assert_eq!(plane.report().delivered, 0);
        // Repair: with the link back and a view supplied, it delivers.
        for _ in 0..5 {
            plane.on_step(&topo, Some(&FlatRoutes));
        }
        assert_eq!(plane.report().delivered, 1);
    }

    #[test]
    fn sharded_and_serial_forwarding_are_byte_identical() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let topo = builders::uniform(80, 0.2, &mut rng);
        let flows: Vec<FlowSpec> = crate::DemandModel {
            flows: 40,
            mean_packets: 30.0,
            ..crate::DemandModel::default()
        }
        .generate(topo.len(), 5);
        let run = |shards: usize| {
            let mut plane = TrafficPlane::new(topo.len(), TrafficConfig::default());
            plane.set_shards(Some(shards));
            plane.add_flows(&flows);
            for _ in 0..200 {
                plane.on_step(&topo, Some(&FlatRoutes));
            }
            plane.report()
        };
        let serial = run(1);
        for shards in [2, 3, 8] {
            assert_eq!(run(shards), serial, "shards={shards} diverged");
        }
    }

    use rand::SeedableRng;
}
