//! Regenerates the paper's Table 1 and the Figure 1 clustering.

fn main() {
    let result = mwn_bench::table1::run();
    println!("{}", mwn_bench::table1::render(&result));
    println!("Resulting clusters (paper: two clusters, headed by h and j):");
    for (head, members) in &result.clusters {
        let members: String = members.iter().collect();
        println!("  head {head}: {{{members}}}");
    }
}
