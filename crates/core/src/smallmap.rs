//! A sorted-vector map for small, hot, per-node neighbor caches.
//!
//! The protocol caches ([`crate::ClusterState`], [`crate::DagState`])
//! hold one entry per radio neighbor — a handful of entries, read and
//! rewritten for every active node on every step of the converging
//! phase. A `BTreeMap` pays pointer-chasing, per-node heap blocks and
//! an allocating `clone` for that working set; a single sorted vector
//! makes the clone one contiguous `memcpy`, equality a linear scan,
//! and lookups a branch-light binary search over one cache line or
//! two. Iteration order is ascending by key — exactly the `BTreeMap`
//! order — so swapping the backing store is observationally invisible
//! to the protocol (the determinism suites verify byte-identical
//! outputs).
//!
//! The API is the subset of `BTreeMap` the protocols use, plus a
//! capacity-reusing `Clone::clone_from` so the engine's scratch-state
//! cloning settles into zero steady-state allocation.

use serde::{Deserialize, Serialize};

/// A map backed by a vector of entries sorted by key.
///
/// Designed for small key counts (a node's radio degree). All query
/// methods are `O(log n)`; `insert`/`remove` shift the tail, which for
/// degree-sized maps is cheaper than touching a tree node.
///
/// # Examples
///
/// ```
/// use mwn_cluster::SmallMap;
///
/// let mut m: SmallMap<u32, &str> = SmallMap::new();
/// m.insert(3, "c");
/// m.insert(1, "a");
/// assert_eq!(m.get(&3), Some(&"c"));
/// // Iteration is always in ascending key order.
/// assert_eq!(m.keys().copied().collect::<Vec<_>>(), vec![1, 3]);
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct SmallMap<K, V> {
    entries: Vec<(K, V)>,
    /// Entries recycled by `clone_from` shrinks. The engine's scratch
    /// state is `clone_from`-ed across nodes of *different* degrees;
    /// without the pool every shrink would free the tail entries' heap
    /// (e.g. a `NeighborEntry`'s view vec) and the next grow would
    /// re-allocate it — one heap round-trip per degree change, forever.
    /// Parking shrunk entries here instead lets grows reuse their
    /// buffers, so scratch cloning settles to zero allocations.
    spare: Vec<(K, V)>,
}

impl<K: Ord, V> SmallMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        SmallMap {
            entries: Vec::new(),
            spare: Vec::new(),
        }
    }

    fn pos(&self, key: &K) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(key))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<&V> {
        match self.pos(key) {
            Ok(i) => Some(&self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Mutable access to the value for `key`, if present.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.pos(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Whether `key` has an entry.
    pub fn contains_key(&self, key: &K) -> bool {
        self.pos(key).is_ok()
    }

    /// Inserts `value` under `key`, returning the previous value if
    /// the key was already present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.pos(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self.pos(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Drops every entry (keeping the allocation).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Keeps only the entries for which `f` returns `true`. Order is
    /// preserved, so the map stays sorted.
    pub fn retain(&mut self, mut f: impl FnMut(&K, &mut V) -> bool) {
        self.entries.retain_mut(|(k, v)| f(k, v));
    }

    /// The keys, in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// The values, in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Iterates `(key, value)` pairs in ascending key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter(self.entries.iter())
    }
}

impl<K: Ord, V> Default for SmallMap<K, V> {
    fn default() -> Self {
        SmallMap::new()
    }
}

/// Spare-pool entries are invisible: two maps are equal iff their live
/// entries are.
impl<K: PartialEq, V: PartialEq> PartialEq for SmallMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl<K: Eq, V: Eq> Eq for SmallMap<K, V> {}

/// `clone_from` reuses the destination's entry buffer (and, through
/// each value's own `clone_from`, any heap the values hold). Entries
/// dropped by a shrink are parked in the spare pool and revived by the
/// next grow, so repeated scratch-clones across differently-sized
/// sources settle to zero allocations.
impl<K: Clone, V: Clone> Clone for SmallMap<K, V> {
    fn clone(&self) -> Self {
        SmallMap {
            entries: self.entries.clone(),
            spare: Vec::new(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        if self.entries.len() > source.entries.len() {
            // Park the surplus tail instead of freeing its heap.
            self.spare
                .extend(self.entries.drain(source.entries.len()..));
        }
        let shared = self.entries.len();
        for (dst, src) in self.entries.iter_mut().zip(&source.entries) {
            dst.0.clone_from(&src.0);
            dst.1.clone_from(&src.1);
        }
        for src in &source.entries[shared..] {
            match self.spare.pop() {
                Some(mut entry) => {
                    entry.0.clone_from(&src.0);
                    entry.1.clone_from(&src.1);
                    self.entries.push(entry);
                }
                None => self.entries.push(src.clone()),
            }
        }
    }
}

/// Borrowing iterator over a [`SmallMap`], yielding `(&K, &V)` in
/// ascending key order (the `BTreeMap` iteration contract).
pub struct Iter<'a, K, V>(std::slice::Iter<'a, (K, V)>);

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<(&'a K, &'a V)> {
        self.0.next().map(|(k, v)| (k, v))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<K, V> ExactSizeIterator for Iter<'_, K, V> {}

impl<'a, K, V> IntoIterator for &'a SmallMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = Iter<'a, K, V>;

    fn into_iter(self) -> Iter<'a, K, V> {
        Iter(self.entries.iter())
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for SmallMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = SmallMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<K: Ord, V> std::ops::Index<&K> for SmallMap<K, V> {
    type Output = V;

    fn index(&self, key: &K) -> &V {
        self.get(key).expect("no entry found for key")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = SmallMap::new();
        assert_eq!(m.insert(5u32, "five"), None);
        assert_eq!(m.insert(2, "two"), None);
        assert_eq!(m.insert(9, "nine"), None);
        assert_eq!(m.insert(5, "FIVE"), Some("five"));
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&5), Some(&"FIVE"));
        assert_eq!(m.get(&7), None);
        assert!(m.contains_key(&2));
        assert_eq!(m.remove(&2), Some("two"));
        assert_eq!(m.remove(&2), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn iteration_is_sorted_like_btreemap() {
        use std::collections::BTreeMap;
        let pairs = [(7u32, 'a'), (1, 'b'), (4, 'c'), (2, 'd'), (9, 'e')];
        let small: SmallMap<u32, char> = pairs.iter().copied().collect();
        let tree: BTreeMap<u32, char> = pairs.iter().copied().collect();
        assert!(small.iter().eq(tree.iter()));
        assert!(small.keys().eq(tree.keys()));
        assert!(small.values().eq(tree.values()));
        assert!((&small).into_iter().eq(tree.iter()));
    }

    #[test]
    fn retain_preserves_order_and_mutates() {
        let mut m: SmallMap<u32, u32> = (0..10u32).map(|k| (k, k * 10)).collect();
        m.retain(|&k, v| {
            *v += 1;
            k % 2 == 0
        });
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), vec![0, 2, 4, 6, 8]);
        assert_eq!(m.get(&4), Some(&41));
    }

    #[test]
    fn clone_from_reuses_and_matches() {
        let source: SmallMap<u32, Vec<u32>> = (0..8u32).map(|k| (k, vec![k; 4])).collect();
        let mut dst = SmallMap::new();
        dst.insert(99u32, vec![1, 2, 3]);
        dst.clone_from(&source);
        assert_eq!(dst, source);
        // A second clone_from of an equal-shape map must not change
        // anything (and in the hot loop it also must not allocate).
        dst.clone_from(&source);
        assert_eq!(dst, source);
    }

    #[test]
    fn clone_from_recycles_shrunk_tails() {
        let big: SmallMap<u32, Vec<u32>> = (0..8u32).map(|k| (k, vec![k; 4])).collect();
        let small: SmallMap<u32, Vec<u32>> = (0..3u32).map(|k| (k, vec![k; 4])).collect();
        let mut scratch = SmallMap::new();
        scratch.clone_from(&big);
        // Shrink: the five surplus entries are parked, not dropped.
        scratch.clone_from(&small);
        assert_eq!(scratch, small);
        assert_eq!(scratch.spare.len(), 5);
        // Grow: the parked entries (and their heap) are revived.
        scratch.clone_from(&big);
        assert_eq!(scratch, big);
        assert!(scratch.spare.is_empty());
        // Equality ignores whatever is parked.
        let mut other = SmallMap::new();
        other.clone_from(&big);
        other.clone_from(&small);
        let mut fresh = SmallMap::new();
        fresh.clone_from(&small);
        assert_eq!(other, fresh);
    }

    #[test]
    fn index_panics_on_missing_key() {
        let m: SmallMap<u32, u32> = [(1u32, 10u32)].into_iter().collect();
        assert_eq!(m[&1], 10);
        let missing = std::panic::catch_unwind(|| m[&2]);
        assert!(missing.is_err());
    }

    #[test]
    fn clear_and_empty() {
        let mut m: SmallMap<u32, u32> = [(1u32, 1u32), (2, 2)].into_iter().collect();
        assert!(!m.is_empty());
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.get(&1), None);
    }
}
