//! The activity-driven engine's scaling story: once a silent protocol
//! stabilizes, dirty-set scheduling drops per-step messages to zero
//! and steps/sec by orders of magnitude versus re-running every guard
//! — on the perfect medium *and*, since the statistical-occupancy
//! contract, under gated-contention CSMA.
//!
//! ```sh
//! cargo run --release -p mwn-bench --bin scaling             # 1k..1M sweep + CSMA rows
//! cargo run --release -p mwn-bench --bin scaling -- --quick  # 1k (CI smoke)
//! cargo run --release -p mwn-bench --bin scaling -- --smoke  # 10k converging + CSMA smoke
//! ```
//!
//! `--smoke` is the CI guard for the kernelized converging phase and
//! for gated contention: one n = 10k point per medium with a short
//! post-stabilization window, asserting the converging-throughput
//! column is non-zero, that a stabilized `SlottedCsma` network sends
//! **0 messages/step**, and that its quiet throughput clears 10⁶
//! steps/s (the eager fallback it replaced managed ~36).
//!
//! Writes `BENCH_scaling.json` next to the working directory.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let sizes: Vec<usize> = if quick {
        vec![1_000]
    } else if smoke {
        vec![10_000]
    } else {
        vec![1_000, 10_000, 50_000, 250_000, 1_000_000]
    };
    // CSMA rows stop at 50k: the converging phase pays the channel
    // race, so the two top sizes would dominate the sweep's wall clock
    // without changing the silence story the rows exist to tell.
    let csma_sizes: Vec<usize> = sizes.iter().copied().filter(|&n| n <= 50_000).collect();
    let post_steps = if quick || smoke { 200 } else { 1_000 };
    let mut points = mwn_bench::scaling::run(&sizes, 20050610, post_steps);
    points.extend(mwn_bench::scaling::run_csma(
        &csma_sizes,
        20050610,
        post_steps,
    ));
    println!("{}", mwn_bench::scaling::render(&points));
    for p in &points {
        assert_eq!(
            p.messages_per_step_stable_gated, 0.0,
            "silence violated at n = {} on `{}`",
            p.nodes, p.medium
        );
        assert!(
            p.converging_steps_per_sec > 0.0,
            "converging throughput missing at n = {} on `{}`",
            p.nodes,
            p.medium
        );
        if p.medium == "slotted-csma" && p.nodes >= 10_000 {
            assert!(
                p.stable_steps_per_sec_gated >= 1e6,
                "gated-CSMA quiet throughput regressed at n = {}: {:.0} steps/s",
                p.nodes,
                p.stable_steps_per_sec_gated
            );
        }
    }
    let json = mwn_bench::scaling::to_json(&points);
    assert!(
        json.contains("converging_steps_per_sec"),
        "BENCH_scaling.json must carry the converging-throughput column"
    );
    assert!(
        json.contains("\"medium\": \"slotted-csma\""),
        "BENCH_scaling.json must carry the gated-CSMA rows"
    );
    let path = "BENCH_scaling.json";
    std::fs::write(path, &json).expect("write BENCH_scaling.json");
    println!("\nwrote {path}");
}
